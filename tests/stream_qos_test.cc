#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/span_trace.h"
#include "obs/stream_qos.h"
#include "sim/failure_drill.h"

// Per-stream QoS ledger + causal block spans. Two layers of coverage:
// unit behavior of the ledger (outcome classification, glitch runs,
// jitter chains, cause registry, flight recorder, span ring bounds) and
// end-to-end scenarios through the fault engine — including the
// acceptance contract of the attribution layer: every hiccup and every
// shed in a scripted FaultSchedule run carries a non-empty cause naming
// the injecting window or the shedding quota, and every QoS observable
// (table, span stream, registry JSON) is byte-identical at any lane
// count.

namespace cmfs {
namespace {

// ------------------------------------------------------------ unit layer

TEST(StreamQosLedgerTest, ClassifiesCleanRetriedReconstructed) {
  StreamQosLedger qos;
  qos.OnAdmit(7, 1, /*priority=*/2);
  // Round 1: plain read, delivered clean.
  qos.OnRead(7, 0, 0, /*disk=*/3, 1, /*retries=*/0, /*failed=*/0);
  qos.OnDeliver(7, 0, 0, 1);
  // Round 2: recovered after one in-round retry.
  qos.OnRead(7, 0, 1, 3, 2, /*retries=*/1, /*failed=*/1);
  qos.OnDeliver(7, 0, 1, 2);
  // Round 3: inline parity reconstruction.
  qos.OnReconstructed(7, 0, 2, 3, 3, /*retries=*/1, /*failed=*/2,
                      /*peer_reads=*/3, "transient_window[0] disk=3");
  qos.OnDeliver(7, 0, 2, 3);
  qos.OnComplete(7, 3);

  const auto rows = qos.Rows();
  ASSERT_EQ(rows.size(), 1u);
  const auto& row = rows[0];
  EXPECT_EQ(row.stream, 7);
  EXPECT_EQ(row.priority, 2);
  EXPECT_EQ(row.admit_round, 1);
  EXPECT_EQ(row.deliveries, 3);
  EXPECT_EQ(row.clean, 1);
  EXPECT_EQ(row.retried, 1);
  EXPECT_EQ(row.reconstructed, 1);
  EXPECT_EQ(row.hiccups, 0);
  EXPECT_FALSE(row.shed);
  EXPECT_TRUE(row.completed);
  EXPECT_EQ(row.verdict, SloVerdict::kMet);
  EXPECT_TRUE(row.violation_cause.empty());
  // Retry and reconstruction rounds are degraded; the clean one is not.
  EXPECT_EQ(row.rounds_degraded, 2);
  // Back-to-back deliveries: both inter-delivery gaps are exactly 1.
  EXPECT_EQ(row.jitter.count(), 2);
  EXPECT_DOUBLE_EQ(row.jitter.max(), 1.0);
  EXPECT_EQ(qos.slo_violations(), 0);

  // The spans carry the journey: outcome labels and retry accounting.
  const auto spans = qos.spans().Window();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].outcome, DeliveryOutcome::kClean);
  EXPECT_EQ(spans[1].outcome, DeliveryOutcome::kRetried);
  EXPECT_EQ(spans[1].retries, 1);
  EXPECT_EQ(spans[2].outcome, DeliveryOutcome::kReconstructed);
  EXPECT_EQ(spans[2].recovery_reads, 3);
  EXPECT_EQ(spans[2].cause, "transient_window[0] disk=3");
}

TEST(StreamQosLedgerTest, HiccupViolatesSloAndCapturesFlightRecord) {
  StreamQosLedger qos;
  qos.OnAdmit(1, 1, 0);
  qos.OnRead(1, 0, 0, 2, 1, 0, 0);
  qos.OnDeliver(1, 0, 0, 1);
  // Round 2: the read is lost for good, then misses its deadline.
  qos.OnReadLost(1, 0, 1, 2, 2, /*retries=*/2, /*failed=*/3,
                 "transient_window[1] disk=2");
  qos.OnHiccup(1, 0, 1, 2, "unattributed");

  const auto rows = qos.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hiccups, 1);
  EXPECT_EQ(rows[0].verdict, SloVerdict::kViolated);
  // The span's lost-read cause wins over the hiccup-time fallback.
  EXPECT_EQ(rows[0].violation_cause, "transient_window[1] disk=2");
  EXPECT_EQ(qos.slo_violations(), 1);

  ASSERT_EQ(qos.flight_records().size(), 1u);
  const auto& record = qos.flight_records()[0];
  EXPECT_EQ(record.stream, 1);
  EXPECT_EQ(record.round, 2);
  EXPECT_EQ(record.cause, "transient_window[1] disk=2");
  // Both closed spans of the stream fall inside the recorder window.
  ASSERT_EQ(record.spans.size(), 2u);
  EXPECT_EQ(record.spans[0].outcome, DeliveryOutcome::kClean);
  EXPECT_EQ(record.spans[1].outcome, DeliveryOutcome::kHiccup);
  EXPECT_TRUE(record.spans[1].lost);

  // A second hiccup does not double-count the violation or re-record.
  qos.OnHiccup(1, 0, 2, 3, "later");
  EXPECT_EQ(qos.slo_violations(), 1);
  EXPECT_EQ(qos.flight_records().size(), 1u);
  EXPECT_EQ(qos.Rows()[0].hiccups, 2);
}

TEST(StreamQosLedgerTest, GlitchRunCountsConsecutiveHiccupRounds) {
  StreamQosLedger qos;
  qos.OnAdmit(0, 1, 0);
  // Two hiccups in round 3 are one run step; rounds 3-4-5 make a run of
  // 3; the isolated round 9 resets to 1.
  qos.OnHiccup(0, 0, 0, 3, "f");
  qos.OnHiccup(0, 0, 1, 3, "f");
  qos.OnHiccup(0, 0, 2, 4, "f");
  qos.OnHiccup(0, 0, 3, 5, "f");
  qos.OnHiccup(0, 0, 4, 9, "f");
  const auto row = qos.Rows()[0];
  EXPECT_EQ(row.hiccups, 5);
  EXPECT_EQ(row.longest_glitch_run, 3);
  EXPECT_EQ(row.rounds_degraded, 4);  // rounds 3, 4, 5, 9
}

TEST(StreamQosLedgerTest, ShedClosesOpenSpansWithCause) {
  StreamQosLedger qos;
  qos.OnAdmit(4, 1, 1);
  // Two blocks prefetched but never delivered.
  qos.OnRead(4, 1, 10, 0, 2, 0, 0);
  qos.OnRead(4, 1, 11, 5, 2, 0, 0);
  qos.OnShed(4, 3, "slow_window[0] disk=5 cap=2");

  const auto row = qos.Rows()[0];
  EXPECT_TRUE(row.shed);
  EXPECT_EQ(row.shed_round, 3);
  EXPECT_EQ(row.verdict, SloVerdict::kViolated);
  EXPECT_EQ(row.violation_cause, "slow_window[0] disk=5 cap=2");

  const auto spans = qos.spans().Window();
  ASSERT_EQ(spans.size(), 2u);
  for (const BlockSpan& span : spans) {
    EXPECT_EQ(span.outcome, DeliveryOutcome::kShed);
    EXPECT_EQ(span.cause, "slow_window[0] disk=5 cap=2");
    EXPECT_EQ(span.close_round, 3);
  }
  // Deterministic key order: index 10 before 11.
  EXPECT_EQ(spans[0].index, 10);
  EXPECT_EQ(spans[1].index, 11);
}

TEST(StreamQosLedgerTest, PauseBreaksJitterChainAndDiscardsOpenSpans) {
  StreamQosLedger qos;
  qos.OnAdmit(2, 1, 0);
  qos.OnRead(2, 0, 0, 1, 1, 0, 0);
  qos.OnDeliver(2, 0, 0, 1);
  qos.OnRead(2, 0, 1, 1, 2, 0, 0);
  qos.OnDeliver(2, 0, 1, 2);  // gap 1
  qos.OnRead(2, 0, 2, 1, 3, 0, 0);  // prefetched, then the viewer pauses
  qos.OnPause(2, 3);
  qos.OnResume(2, 9);
  qos.OnRead(2, 0, 2, 1, 10, 0, 0);
  qos.OnDeliver(2, 0, 2, 10);  // chain broken: the 8-round gap is excluded
  qos.OnRead(2, 0, 3, 1, 11, 0, 0);
  qos.OnDeliver(2, 0, 3, 11);  // gap 1 again

  const auto row = qos.Rows()[0];
  EXPECT_EQ(row.deliveries, 4);
  EXPECT_EQ(row.jitter.count(), 2);
  EXPECT_DOUBLE_EQ(row.jitter.max(), 1.0);
  EXPECT_EQ(row.verdict, SloVerdict::kMet);
  // The paused-away prefetch did not leak a shed/hiccup span.
  for (const BlockSpan& span : qos.spans().Window()) {
    EXPECT_EQ(span.outcome, DeliveryOutcome::kClean);
  }
}

TEST(StreamQosLedgerTest, CauseRegistryFirstRegistrationWins) {
  StreamQosLedger qos;
  const std::string fallback = "failed disk 3";
  EXPECT_EQ(qos.CauseForDisk(3, fallback), fallback);
  qos.SetDiskCause(3, "fail_stop[0] disk=3");
  qos.SetDiskCause(3, "transient_window[9] disk=3");  // loses: first wins
  EXPECT_EQ(qos.CauseForDisk(3, fallback), "fail_stop[0] disk=3");
  qos.ClearDiskCauses();
  EXPECT_EQ(qos.CauseForDisk(3, fallback), fallback);
}

TEST(SpanRingTest, BoundsMemoryAndReportsDrops) {
  SpanRing ring(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    BlockSpan span;
    span.stream = 0;
    span.index = i;
    span.close_round = i;
    ring.Push(std::move(span));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10);
  EXPECT_EQ(ring.dropped(), 6);
  const auto window = ring.Window();
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window.front().index, 6);  // oldest retained
  EXPECT_EQ(window.back().index, 9);
  // The rendering names the drop so a too-small ring is visible.
  EXPECT_NE(ring.ToString().find("6 older spans dropped"), std::string::npos);
}

// FormatSpans windowing at the ring's wraparound boundary: the header
// must report exactly how many older spans the window no longer holds,
// the rendered spans must be the oldest retained ones in order, and the
// truncation footer must count what the max_spans cut elided — all
// stable as the ring wraps repeatedly.
TEST(SpanRingTest, FormatSpansWindowsAcrossWraparound) {
  SpanRing ring(/*capacity=*/4);
  auto push = [&ring](int i) {
    BlockSpan span;
    span.stream = i;
    span.index = i;
    span.open_round = i;
    span.close_round = i;
    ring.Push(std::move(span));
  };
  // Exactly full: no drop header, every span rendered.
  for (int i = 0; i < 4; ++i) push(i);
  std::string out = FormatSpans(ring.Window(), 10, ring.total_recorded());
  EXPECT_EQ(out.find("older spans dropped"), std::string::npos);
  EXPECT_NE(out.find("stream=0"), std::string::npos);
  EXPECT_NE(out.find("stream=3"), std::string::npos);

  // One past full: the wrap begins — drop header appears, the oldest
  // rendered span is now stream 1.
  push(4);
  out = FormatSpans(ring.Window(), 10, ring.total_recorded());
  EXPECT_NE(out.find("(window of 4 of 5 spans; 1 older spans dropped)"),
            std::string::npos);
  EXPECT_EQ(out.find("stream=0"), std::string::npos);
  EXPECT_NE(out.find("stream=1"), std::string::npos);

  // Deep wrap plus a max_spans cut: header counts the ring's loss, the
  // footer counts the render cut, and the two compose.
  for (int i = 5; i < 11; ++i) push(i);
  out = FormatSpans(ring.Window(), 2, ring.total_recorded());
  EXPECT_NE(out.find("(window of 4 of 11 spans; 7 older spans dropped)"),
            std::string::npos);
  EXPECT_NE(out.find("stream=7"), std::string::npos);  // oldest retained
  EXPECT_NE(out.find("stream=8"), std::string::npos);
  EXPECT_EQ(out.find("stream=9"), std::string::npos);  // beyond the cut
  EXPECT_NE(out.find("... (2 more)"), std::string::npos);

  // The spans themselves stay oldest-first through the wrap.
  const auto window = ring.Window();
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_GT(window[i].close_round, window[i - 1].close_round);
  }
}

TEST(StreamQosLedgerTest, ExportMetricsPublishesAggregates) {
  StreamQosLedger qos;
  qos.OnAdmit(0, 1, 0);
  qos.OnAdmit(1, 1, 0);
  qos.OnHiccup(0, 0, 0, 2, "f");
  qos.OnShed(1, 2, "quota");
  MetricsRegistry registry;
  qos.ExportMetrics(&registry);
  EXPECT_EQ(registry.counter("qos.streams_admitted")->value(), 2);
  EXPECT_EQ(registry.counter("qos.slo_violations")->value(), 2);
  EXPECT_EQ(registry.counter("qos.streams_shed")->value(), 1);
  EXPECT_EQ(registry.counter("qos.hiccup_streams")->value(), 1);
  EXPECT_EQ(registry.counter("qos.spans_recorded")->value(), 1);
  EXPECT_EQ(registry.histogram("qos.longest_glitch_run")->count(), 1);
}

// ------------------------------------------------- end-to-end scenarios

struct QosRun {
  std::string table;       // per-stream QoS table
  std::string spans;       // full span-stream rendering
  std::string json;        // registry export (includes qos.* metrics)
  ScenarioResult scenario;
};

QosRun RunWithLanes(ScenarioConfig config, int lanes) {
  MetricsRegistry registry;
  StreamQosLedger qos;
  config.lanes = lanes;
  config.metrics = &registry;
  config.qos = &qos;
  Result<ScenarioResult> run = RunScenario(config);
  EXPECT_TRUE(run.ok()) << "lanes=" << lanes << ": "
                        << run.status().ToString();
  QosRun out;
  if (!run.ok()) return out;
  out.table = qos.TableString();
  out.spans = FormatSpans(qos.spans().Window(), qos.spans().size(),
                          qos.spans().total_recorded());
  JsonWriter json;
  json.BeginObject();
  AppendRegistryJson(registry, &json);
  json.EndObject();
  out.json = json.TakeString();
  out.scenario = *run;
  return out;
}

// Byte-identity of every QoS observable at 1, 2, 8 and hardware-default
// lanes; returns the single-lane run for structural checks.
QosRun ExpectQosLaneInvariant(const ScenarioConfig& config) {
  const QosRun baseline = RunWithLanes(config, 1);
  for (int lanes : {2, 8, 0}) {
    const QosRun parallel = RunWithLanes(config, lanes);
    EXPECT_EQ(baseline.table, parallel.table) << "lanes=" << lanes;
    EXPECT_EQ(baseline.spans, parallel.spans) << "lanes=" << lanes;
    EXPECT_EQ(baseline.json, parallel.json) << "lanes=" << lanes;
    EXPECT_EQ(baseline.scenario.ToString(), parallel.scenario.ToString())
        << "lanes=" << lanes;
  }
  return baseline;
}

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.scheme = Scheme::kDeclustered;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 8;
  config.f = 1;
  config.block_size = 64;
  config.num_streams = 16;
  config.stream_blocks = 60;
  config.total_rounds = 120;
  return config;
}

TEST(StreamQosScenarioTest, CleanRunMeetsSloForEveryStream) {
  const QosRun run = ExpectQosLaneInvariant(BaseConfig());
  EXPECT_EQ(run.scenario.slo_violations, 0);
  EXPECT_TRUE(run.scenario.flight_records.empty());
  // One ledger row per *admitted* stream (rejected ones never play).
  EXPECT_GT(run.scenario.admitted, 0);
  ASSERT_EQ(run.scenario.stream_rows.size(),
            static_cast<std::size_t>(run.scenario.admitted));
  for (const auto& row : run.scenario.stream_rows) {
    EXPECT_EQ(row.verdict, SloVerdict::kMet);
    EXPECT_EQ(row.deliveries, row.clean);
    EXPECT_EQ(row.hiccups, 0);
    EXPECT_TRUE(row.completed);
    EXPECT_DOUBLE_EQ(row.jitter.max(), 1.0);  // the paper's continuity
  }
}

TEST(StreamQosScenarioTest, FaultStormTablesAreLaneInvariant) {
  ScenarioConfig config = BaseConfig();
  // Every fault class at once: transient storm (absorbed by retries),
  // slow-disk shedding, fail-stop with swap + online rebuild.
  config.schedule.transients.push_back(TransientWindow{1, 5, 15, 1.0, 2});
  config.schedule.slow_windows.push_back(SlowWindow{2, 20, 28, 1});
  config.schedule.fail_stops.push_back(FailStopEvent{3, 35});
  config.schedule.swaps.push_back(SwapEvent{3, 45, 4});
  config.priority_classes = 4;
  config.max_read_retries = 2;
  const QosRun run = ExpectQosLaneInvariant(config);
  // The slow disk shed someone; every shed is an attributed violation.
  EXPECT_GT(run.scenario.metrics.shed_streams, 0);
  EXPECT_GT(run.scenario.slo_violations, 0);
  std::int64_t shed_rows = 0;
  for (const auto& row : run.scenario.stream_rows) {
    if (!row.shed) continue;
    ++shed_rows;
    EXPECT_EQ(row.verdict, SloVerdict::kViolated);
    EXPECT_FALSE(row.violation_cause.empty());
  }
  EXPECT_EQ(shed_rows, run.scenario.metrics.shed_streams);
  // Surviving streams kept the paper's guarantee through the storm.
  for (const auto& row : run.scenario.stream_rows) {
    if (!row.shed) EXPECT_EQ(row.hiccups, 0);
  }
  // The scenario report embeds the table and is itself lane-invariant.
  EXPECT_NE(run.scenario.ToString().find("per-stream QoS:"),
            std::string::npos);
}

TEST(StreamQosScenarioTest, HiccupCausesNameTheInjectingWindow) {
  ScenarioConfig config = BaseConfig();
  // Blocks may fail 3 attempts but the budget is 1 retry and inline
  // reconstruction is disabled: reads on disk 2 are lost for good and
  // hiccup at their deadlines.
  config.schedule.transients.push_back(TransientWindow{2, 8, 20, 1.0, 3});
  config.max_read_retries = 1;
  config.reconstruct_on_read_error = false;
  config.allow_hiccups = true;
  const QosRun run = ExpectQosLaneInvariant(config);
  EXPECT_GT(run.scenario.metrics.lost_reads, 0);
  EXPECT_GT(run.scenario.metrics.hiccups, 0);
  EXPECT_GT(run.scenario.slo_violations, 0);
  EXPECT_FALSE(run.scenario.flight_records.empty());

  // Acceptance contract: every hiccup span names the injecting window.
  std::int64_t hiccup_spans = 0;
  for (const BlockSpan& span : run.scenario.flight_records.front().spans) {
    if (span.outcome != DeliveryOutcome::kHiccup) continue;
    ++hiccup_spans;
    EXPECT_NE(span.cause.find("transient_window[0]"), std::string::npos)
        << span.ToString();
  }
  EXPECT_GT(hiccup_spans, 0);
  for (const auto& row : run.scenario.stream_rows) {
    if (row.verdict != SloVerdict::kViolated) continue;
    EXPECT_NE(row.violation_cause.find("transient_window[0]"),
              std::string::npos)
        << row.violation_cause;
  }
}

TEST(StreamQosScenarioTest, ShedCausesNameTheSlowWindowQuota) {
  ScenarioConfig config = BaseConfig();
  config.schedule.slow_windows.push_back(SlowWindow{3, 15, 25, 1});
  config.priority_classes = 4;
  const QosRun run = ExpectQosLaneInvariant(config);
  EXPECT_GT(run.scenario.metrics.shed_streams, 0);
  for (const auto& row : run.scenario.stream_rows) {
    if (!row.shed) continue;
    EXPECT_NE(row.violation_cause.find("slow_window[0]"), std::string::npos)
        << row.violation_cause;
  }
}

TEST(StreamQosScenarioTest, FailStopHiccupsAttributeToTheFailedDisk) {
  // Non-clustered has no parity: the failed disk's blocks simply miss
  // their deadlines. Those hiccup spans were never opened by a read —
  // the fallback attribution must still name the fail-stop event.
  ScenarioConfig config = BaseConfig();
  config.scheme = Scheme::kNonClustered;
  // Disk 2 at round 20 cuts several streams mid-group — their partial
  // groups are documented transition losses.
  config.schedule.fail_stops.push_back(FailStopEvent{2, 20});
  const QosRun run = ExpectQosLaneInvariant(config);
  EXPECT_GT(run.scenario.metrics.hiccups, 0);
  EXPECT_GT(run.scenario.slo_violations, 0);
  ASSERT_FALSE(run.scenario.flight_records.empty());
  for (const auto& record : run.scenario.flight_records) {
    EXPECT_NE(record.cause.find("fail_stop[0]"), std::string::npos)
        << record.cause;
  }
}

TEST(StreamQosScenarioTest, EpochReportShowsLaneCriticalPercentiles) {
  ScenarioConfig config = BaseConfig();
  config.schedule.fail_stops.push_back(FailStopEvent{3, 35});
  MetricsRegistry registry;
  config.metrics = &registry;
  Result<ScenarioResult> run = RunScenario(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GE(run->epochs.size(), 2u);
  for (const EpochCounters& epoch : run->epochs) {
    if (epoch.rounds == 0) continue;
    EXPECT_GT(epoch.lane_critical.count(), 0);
    // The quota is the paper's cap on the busiest lane.
    EXPECT_LE(epoch.lane_critical.max(), config.q);
    EXPECT_NE(epoch.ToString().find("lane_critical p50="),
              std::string::npos);
  }
  // The scenario exported the ledger's aggregates into the registry.
  EXPECT_EQ(registry.counter("qos.streams_admitted")->value(),
            run->admitted);
}

}  // namespace
}  // namespace cmfs
