#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/driver.h"
#include "sim/reliability_sim.h"
#include "sim/stats.h"
#include "sim/workload.h"

namespace cmfs {
namespace {

WorkloadConfig SmallWorkload() {
  WorkloadConfig w;
  w.num_clips = 100;
  w.clip_blocks = 50;
  w.arrivals_per_tu = 20.0;
  w.rounds_per_tu = 10;
  w.duration_tu = 60;
  return w;
}

TEST(WorkloadTest, ArrivalsArePoissonish) {
  Rng rng(1);
  const WorkloadConfig w = SmallWorkload();
  const auto arrivals = GenerateArrivals(w, rng);
  // Expected 20 * 60 = 1200 arrivals.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 1200.0, 120.0);
  // Sorted by round, all within the horizon.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].round, arrivals[i - 1].round);
  }
  EXPECT_LT(arrivals.back().round, 600);
  // Clips drawn across the catalog.
  std::set<int> clips;
  for (const Arrival& a : arrivals) clips.insert(a.clip);
  EXPECT_GT(clips.size(), 60u);
}

TEST(WorkloadTest, ZipfSkewConcentratesChoices) {
  Rng rng(1);
  WorkloadConfig w = SmallWorkload();
  w.zipf_theta = 1.2;
  const auto arrivals = GenerateArrivals(w, rng);
  int clip0 = 0;
  for (const Arrival& a : arrivals) {
    if (a.clip == 0) ++clip0;
  }
  EXPECT_GT(clip0, static_cast<int>(arrivals.size()) / 20);
}

TEST(WorkloadTest, DeclusteredPlacementsCoverDisksAndRows) {
  Rng rng(2);
  WorkloadConfig w = SmallWorkload();
  w.num_clips = 500;
  const auto placements =
      GeneratePlacements(Scheme::kDeclustered, 8, 3, 3, w, rng);
  std::set<std::pair<int, int>> disk_rows;
  for (const ClipPlacement& p : placements) {
    EXPECT_EQ(p.space, 0);
    const int disk = static_cast<int>(p.start % 8);
    const int row = static_cast<int>((p.start / 8) % 3);
    disk_rows.insert({disk, row});
  }
  EXPECT_EQ(disk_rows.size(), 24u);  // All 8 x 3 combinations hit.
}

TEST(WorkloadTest, DynamicPlacementsUseAllSpaces) {
  Rng rng(3);
  WorkloadConfig w = SmallWorkload();
  const auto placements =
      GeneratePlacements(Scheme::kDynamic, 7, 3, 3, w, rng);
  std::set<int> spaces;
  for (const ClipPlacement& p : placements) spaces.insert(p.space);
  EXPECT_EQ(spaces.size(), 3u);
}

TEST(WorkloadTest, ClusteredPlacementsGroupAligned) {
  Rng rng(4);
  const WorkloadConfig w = SmallWorkload();
  for (Scheme s : {Scheme::kPrefetchParityDisk, Scheme::kPrefetchFlat,
                   Scheme::kStreamingRaid, Scheme::kNonClustered}) {
    const auto placements = GeneratePlacements(s, 8, 0, 4, w, rng);
    for (const ClipPlacement& p : placements) {
      EXPECT_EQ(p.start % 3, 0);
    }
  }
}

TEST(WorkloadTest, RequiredCapacityCoversAll) {
  const std::vector<ClipPlacement> placements = {{0, 10}, {0, 99}, {0, 5}};
  EXPECT_EQ(RequiredCapacity(placements, {50, 50, 50}), 149);
  EXPECT_EQ(RequiredCapacity(placements, {200, 10, 10}), 210);
}

TEST(WorkloadTest, ClipLengthJitterSpreadsAndAligns) {
  Rng rng(9);
  WorkloadConfig w = SmallWorkload();
  w.num_clips = 400;
  // No jitter: all lengths equal clip_blocks (span 1).
  auto fixed = GenerateClipLengths(w, 1, rng);
  for (std::int64_t len : fixed) EXPECT_EQ(len, w.clip_blocks);
  // Jitter: spread within [0.5, 1.5]x, min/max differ, span respected.
  w.clip_length_jitter = 0.5;
  auto jittered = GenerateClipLengths(w, 3, rng);
  std::int64_t lo = jittered[0];
  std::int64_t hi = jittered[0];
  for (std::int64_t len : jittered) {
    EXPECT_EQ(len % 3, 0);
    EXPECT_GE(len, static_cast<std::int64_t>(0.5 * w.clip_blocks));
    EXPECT_LE(len, static_cast<std::int64_t>(1.5 * w.clip_blocks) + 3);
    lo = std::min(lo, len);
    hi = std::max(hi, len);
  }
  EXPECT_LT(lo, hi);
}

TEST(DriverTest, JitteredLengthsRunEndToEnd) {
  SimConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 6;
  config.workload = SmallWorkload();
  config.workload.clip_length_jitter = 0.4;
  Result<SimResult> result = RunCapacitySim(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->admitted, 0);
}

TEST(DriverTest, AdmitsAtMostArrivals) {
  SimConfig config;
  config.scheme = Scheme::kPrefetchParityDisk;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 10;
  config.workload = SmallWorkload();
  Result<SimResult> result = RunCapacitySim(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->admitted, 0);
  EXPECT_LE(result->admitted, result->arrivals);
  EXPECT_EQ(result->admitted + result->still_pending, result->arrivals);
}

TEST(DriverTest, ThroughputScalesWithQ) {
  SimConfig config;
  config.scheme = Scheme::kDeclustered;
  config.num_disks = 8;
  config.parity_group = 2;
  config.rows = 7;
  config.f = 2;
  config.workload = SmallWorkload();
  config.policy = AdmissionPolicy::kFirstFit;
  config.q = 6;
  const auto low = RunCapacitySim(config);
  config.q = 12;
  const auto high = RunCapacitySim(config);
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GT(high->admitted, low->admitted);
}

TEST(DriverTest, DeterministicForSeed) {
  SimConfig config;
  config.scheme = Scheme::kNonClustered;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 8;
  config.workload = SmallWorkload();
  const auto a = RunCapacitySim(config);
  const auto b = RunCapacitySim(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->admitted, b->admitted);
  EXPECT_EQ(a->max_concurrent, b->max_concurrent);
  EXPECT_DOUBLE_EQ(a->mean_response_tu, b->mean_response_tu);
}

TEST(DriverTest, FirstFitNeverAdmitsFewerThanHeadOfLine) {
  SimConfig config;
  config.scheme = Scheme::kDeclustered;
  config.num_disks = 8;
  config.parity_group = 2;
  config.rows = 7;
  config.q = 8;
  config.f = 1;
  config.workload = SmallWorkload();
  config.policy = AdmissionPolicy::kFifoHeadOfLine;
  const auto fifo = RunCapacitySim(config);
  config.policy = AdmissionPolicy::kFirstFit;
  const auto fit = RunCapacitySim(config);
  ASSERT_TRUE(fifo.ok() && fit.ok());
  EXPECT_GE(fit->admitted, fifo->admitted);
}

TEST(DriverTest, BatchingServesMoreUnderSkew) {
  SimConfig config;
  config.scheme = Scheme::kPrefetchParityDisk;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 6;
  config.workload = SmallWorkload();
  config.workload.zipf_theta = 1.2;
  config.policy = AdmissionPolicy::kFirstFit;
  const auto plain = RunCapacitySim(config);
  config.batch_window_rounds = 50;
  const auto batched = RunCapacitySim(config);
  ASSERT_TRUE(plain.ok() && batched.ok());
  EXPECT_EQ(plain->batched, 0);
  EXPECT_GT(batched->batched, 0);
  EXPECT_GT(batched->admitted, plain->admitted);
  // Disk-bandwidth consumers (non-batched streams) never exceed the
  // controller's capacity regardless of batching (q per data disk, plus
  // the playback tails of completed fetches draining for p-1 rounds).
  EXPECT_LE(batched->max_concurrent, 6 * 6 + 6);
}

TEST(DriverTest, BatchingOffUnderUniformIsNearNoop) {
  SimConfig config;
  config.scheme = Scheme::kPrefetchParityDisk;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 6;
  config.workload = SmallWorkload();
  config.workload.num_clips = 5000;  // Effectively no repeats.
  config.batch_window_rounds = 20;
  const auto result = RunCapacitySim(config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->batched, result->admitted / 10);
}

TEST(DriverTest, ChurnFreesCapacityForMoreAdmissions) {
  SimConfig config;
  config.scheme = Scheme::kPrefetchParityDisk;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 4;
  config.workload = SmallWorkload();
  config.policy = AdmissionPolicy::kFirstFit;
  const auto loyal = RunCapacitySim(config);
  config.renege_prob = 0.5;
  const auto churny = RunCapacitySim(config);
  ASSERT_TRUE(loyal.ok() && churny.ok());
  EXPECT_EQ(loyal->reneged, 0);
  EXPECT_GT(churny->reneged, 0);
  // Early departures free slots, so more clients get in overall.
  EXPECT_GT(churny->admitted, loyal->admitted);
}

TEST(DriverTest, AgedFirstFitBoundsWaitingTime) {
  // A contended declustered workload with f = 1 starves some requests
  // under plain first-fit; the aging gate trades a little throughput for
  // a bounded wait.
  SimConfig config;
  config.scheme = Scheme::kDeclustered;
  config.num_disks = 8;
  config.parity_group = 2;
  config.rows = 7;
  config.q = 8;
  config.f = 1;
  config.workload = SmallWorkload();
  config.workload.arrivals_per_tu = 40.0;  // Heavy contention.
  config.policy = AdmissionPolicy::kFirstFit;
  const auto fit = RunCapacitySim(config);
  config.policy = AdmissionPolicy::kAgedFirstFit;
  config.max_wait_rounds = 50;
  const auto aged = RunCapacitySim(config);
  ASSERT_TRUE(fit.ok() && aged.ok());
  EXPECT_LT(aged->max_response_tu, fit->max_response_tu);
  // Throughput stays close to plain first-fit (well above HOL FIFO).
  config.policy = AdmissionPolicy::kFifoHeadOfLine;
  const auto fifo = RunCapacitySim(config);
  ASSERT_TRUE(fifo.ok());
  EXPECT_GT(aged->admitted, fifo->admitted);
}

TEST(DriverTest, MaxConcurrentRespectsCapacityBound) {
  SimConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 5;
  config.workload = SmallWorkload();
  Result<SimResult> result = RunCapacitySim(config);
  ASSERT_TRUE(result.ok());
  // q per cluster, 2 clusters of fetch slots; completed fetches drain
  // their buffered group for up to one more super-round while a
  // successor occupies the slot, so the ceiling is twice the slots.
  EXPECT_LE(result->max_concurrent, 2 * 5 * 2);
  EXPECT_GE(result->max_concurrent, 5 * 2);
}

TEST(DriverTest, DynamicSchemeRunsEndToEnd) {
  SimConfig config;
  config.scheme = Scheme::kDynamic;
  config.num_disks = 7;
  config.parity_group = 3;
  config.q = 8;
  config.workload = SmallWorkload();
  config.workload.num_clips = 50;
  config.workload.duration_tu = 30;
  Result<SimResult> result = RunCapacitySim(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->admitted, 0);
}

TEST(ReliabilitySimTest, MatchesClosedFormWithinTolerance) {
  ReliabilityConfig config;
  config.num_disks = 16;
  config.group_size = 4;
  config.trials = 4000;
  Result<ReliabilityResult> result = SimulateMttdl(config);
  ASSERT_TRUE(result.ok());
  // Monte-Carlo mean of an exponential-ish variable: +-10% at 4000
  // trials is comfortable.
  EXPECT_NEAR(result->mttdl_hours / result->analytic_hours, 1.0, 0.15);
  EXPECT_GT(result->mean_failures_survived, 100.0);
}

TEST(ReliabilitySimTest, DeclusteredTradeoffIsMttdlNeutral) {
  ReliabilityConfig config;
  config.num_disks = 32;
  config.group_size = 4;
  config.trials = 3000;
  config.declustered = false;
  const auto clustered = SimulateMttdl(config);
  config.declustered = true;
  const auto declustered = SimulateMttdl(config);
  ASSERT_TRUE(clustered.ok() && declustered.ok());
  // Same analytic value by construction; simulations agree within noise.
  EXPECT_NEAR(clustered->analytic_hours, declustered->analytic_hours,
              1e-6 * clustered->analytic_hours);
  EXPECT_NEAR(declustered->mttdl_hours / clustered->mttdl_hours, 1.0,
              0.3);
}

TEST(ReliabilitySimTest, ShorterRepairRaisesMttdl) {
  ReliabilityConfig config;
  config.num_disks = 16;
  config.group_size = 4;
  config.trials = 1500;
  config.repair_hours = 24.0;
  const auto slow = SimulateMttdl(config);
  config.repair_hours = 6.0;
  const auto fast = SimulateMttdl(config);
  ASSERT_TRUE(slow.ok() && fast.ok());
  EXPECT_GT(fast->mttdl_hours, 2.0 * slow->mttdl_hours);
}

TEST(ReliabilitySimTest, RejectsBadConfig) {
  ReliabilityConfig config;
  config.num_disks = 2;
  config.group_size = 4;
  EXPECT_FALSE(SimulateMttdl(config).ok());
  config.group_size = 2;
  config.trials = 0;
  EXPECT_FALSE(SimulateMttdl(config).ok());
}

TEST(StatsTest, SummaryBasics) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.stddev(), 1.632993, 1e-5);
}

TEST(StatsTest, LoadImbalance) {
  EXPECT_DOUBLE_EQ(LoadImbalance({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({0, 0, 0}), 0.0);
  EXPECT_GT(LoadImbalance({10, 0, 0, 0}), 1.0);
}

}  // namespace
}  // namespace cmfs
