#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace cmfs {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MoreItemsThanThreads) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(257, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 257 * 256 / 2);
}

TEST(ThreadPoolTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::int64_t> order;
  pool.ParallelFor(10, [&](std::int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const std::int64_t n = 1 + (round % 7) * 13;
    std::atomic<std::int64_t> count{0};
    pool.ParallelFor(n, [&](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), n) << "round " << round;
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ThreadPool pool;  // num_threads <= 0 selects the default
  EXPECT_GE(pool.num_threads(), 1);
}

}  // namespace
}  // namespace cmfs
