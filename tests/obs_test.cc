#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/content.h"
#include "core/controller_factory.h"
#include "core/rebuild.h"
#include "core/server.h"
#include "layout/layout.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/round_timeline.h"
#include "obs/stats.h"

namespace cmfs {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundaries) {
  Histogram::Options opts;
  opts.min_value = 1.0;
  opts.octaves = 4;
  opts.sub_buckets_per_octave = 2;
  Histogram h(opts);
  // underflow + 4*2 tracked + overflow.
  ASSERT_EQ(h.num_buckets(), 10u);

  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.99), 0u);
  EXPECT_EQ(h.BucketIndex(1.0), 1u);   // [1, 1.5)
  EXPECT_EQ(h.BucketIndex(1.49), 1u);
  EXPECT_EQ(h.BucketIndex(1.5), 2u);   // [1.5, 2)
  EXPECT_EQ(h.BucketIndex(2.0), 3u);   // [2, 3)
  EXPECT_EQ(h.BucketIndex(3.0), 4u);   // [3, 4)
  EXPECT_EQ(h.BucketIndex(4.0), 5u);   // [4, 6)
  EXPECT_EQ(h.BucketIndex(8.0), 7u);   // [8, 12)
  EXPECT_EQ(h.BucketIndex(15.9), 8u);  // [12, 16)
  EXPECT_EQ(h.BucketIndex(16.0), 9u);  // overflow
  EXPECT_EQ(h.BucketIndex(1e9), 9u);

  EXPECT_DOUBLE_EQ(h.BucketLowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketLowerBound(1), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(1), 1.5);
  EXPECT_DOUBLE_EQ(h.BucketLowerBound(5), 4.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(5), 6.0);
  EXPECT_DOUBLE_EQ(h.BucketLowerBound(9), 16.0);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(9)));

  // Every tracked value lands in a bucket whose bounds contain it.
  for (double v : {1.0, 1.3, 2.7, 5.5, 9.0, 13.2, 15.99}) {
    const std::size_t idx = h.BucketIndex(v);
    EXPECT_GE(v, h.BucketLowerBound(idx)) << v;
    EXPECT_LT(v, h.BucketUpperBound(idx)) << v;
  }
}

TEST(HistogramTest, EmptyAndExtrema) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_GT(h.min(), 0.0);
  EXPECT_TRUE(std::isinf(h.max()));
  EXPECT_LT(h.max(), 0.0);

  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  // A single sample: every percentile is that sample (clamped exactly).
  EXPECT_DOUBLE_EQ(h.Percentile(1), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 5.0);
}

TEST(HistogramTest, PercentileMonotoneAndAccurate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  double prev = 0.0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  // Relative error bounded by one sub-bucket (1/16 by default).
  EXPECT_NEAR(h.Percentile(50), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(h.Percentile(99), 990.0, 990.0 / 16 + 1);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  auto fill = [](Histogram* h, int lo, int hi) {
    for (int i = lo; i < hi; ++i) h->Add(static_cast<double>(i));
  };
  Histogram a, b, c;
  fill(&a, 1, 100);
  fill(&b, 50, 400);
  fill(&c, 300, 1000);

  // (a + b) + c
  Histogram left;
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);
  // a + (c + b)
  Histogram right_inner;
  right_inner.Merge(c);
  right_inner.Merge(b);
  Histogram right;
  right.Merge(a);
  right.Merge(right_inner);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
  for (std::size_t i = 0; i < left.num_buckets(); ++i) {
    EXPECT_EQ(left.bucket_count(i), right.bucket_count(i)) << i;
  }
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(left.Percentile(p), right.Percentile(p)) << p;
  }

  // Merging an empty histogram is the identity.
  Histogram with_empty;
  with_empty.Merge(left);
  with_empty.Merge(Histogram());
  EXPECT_EQ(with_empty.count(), left.count());
  EXPECT_DOUBLE_EQ(with_empty.min(), left.min());
}

// ------------------------------------------------------------------ Summary

TEST(SummaryTest, EmptyExtremaAreIdentityNotZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  // The old 0.0 sentinel made merged minima collapse to 0; empty must be
  // the identity under min/max.
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_GT(s.min(), 0.0);
  EXPECT_TRUE(std::isinf(s.max()));
  EXPECT_LT(s.max(), 0.0);
}

TEST(SummaryTest, MergeHandlesEmptyAndCombinesMoments) {
  Summary a;
  a.Add(2.0);
  a.Add(4.0);
  Summary empty;

  Summary merged = a;
  merged.Merge(empty);  // no-op
  EXPECT_EQ(merged.count(), 2);
  EXPECT_DOUBLE_EQ(merged.min(), 2.0);

  Summary from_empty;
  from_empty.Merge(a);  // adopts a's extrema, not 0.0
  EXPECT_EQ(from_empty.count(), 2);
  EXPECT_DOUBLE_EQ(from_empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(from_empty.max(), 4.0);

  Summary b;
  b.Add(10.0);
  b.Add(20.0);
  Summary all = a;
  all.Merge(b);
  Summary direct;
  for (double x : {2.0, 4.0, 10.0, 20.0}) direct.Add(x);
  EXPECT_EQ(all.count(), direct.count());
  EXPECT_DOUBLE_EQ(all.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(all.min(), direct.min());
  EXPECT_DOUBLE_EQ(all.max(), direct.max());
  EXPECT_DOUBLE_EQ(all.stddev(), direct.stddev());
}

// ---------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, FindOrCreateAndStablePointers) {
  MetricsRegistry reg;
  Counter* c = reg.counter("server.reads");
  c->Inc(3);
  EXPECT_EQ(reg.counter("server.reads"), c);  // same instrument
  EXPECT_EQ(reg.counter("server.reads")->value(), 3);

  reg.gauge("rebuild.progress")->Set(0.5);
  EXPECT_DOUBLE_EQ(reg.FindGauge("rebuild.progress")->value(), 0.5);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);

  Histogram* h = reg.histogram("round_time");
  h->Add(1.0);
  EXPECT_EQ(reg.histogram("round_time"), h);
  EXPECT_EQ(reg.FindHistogram("round_time")->count(), 1);
}

TEST(MetricsRegistryTest, MergeFrom) {
  MetricsRegistry a, b;
  a.counter("x")->Inc(2);
  b.counter("x")->Inc(5);
  b.counter("only_b")->Inc(1);
  a.gauge("hw")->Set(10.0);
  b.gauge("hw")->Set(7.0);
  a.histogram("h")->Add(1.0);
  b.histogram("h")->Add(100.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.counter("x")->value(), 7);
  EXPECT_EQ(a.counter("only_b")->value(), 1);
  EXPECT_DOUBLE_EQ(a.gauge("hw")->value(), 10.0);  // max wins
  EXPECT_EQ(a.histogram("h")->count(), 2);
  EXPECT_DOUBLE_EQ(a.histogram("h")->max(), 100.0);
  EXPECT_NE(a.ToString().find("only_b"), std::string::npos);
}

// ------------------------------------------------------------ RoundTimeline

RoundSample MakeSample(std::int64_t round, bool degraded,
                       double worst_time = 0.01) {
  RoundSample s;
  s.round = round;
  s.reads = 8;
  s.recovery_reads = degraded ? 3 : 0;
  s.deliveries = 8;
  s.degraded = degraded;
  s.worst_disk_time = worst_time;
  s.buffer_blocks = 16;
  return s;
}

TEST(RoundTimelineTest, EpochReportSplitsBeforeDuringAfter) {
  RoundTimeline timeline;
  for (int r = 1; r <= 10; ++r) timeline.Add(MakeSample(r, false));
  for (int r = 11; r <= 25; ++r) timeline.Add(MakeSample(r, true, 0.05));
  for (int r = 26; r <= 30; ++r) timeline.Add(MakeSample(r, false));

  const FailureEpochReport report = timeline.EpochReport();
  EXPECT_TRUE(report.saw_failure());
  EXPECT_EQ(report.before.rounds, 10);
  EXPECT_EQ(report.before.first_round, 1);
  EXPECT_EQ(report.before.last_round, 10);
  EXPECT_EQ(report.during.rounds, 15);
  EXPECT_EQ(report.during.first_round, 11);
  EXPECT_EQ(report.during.last_round, 25);
  EXPECT_EQ(report.during.recovery_reads, 45);
  EXPECT_EQ(report.after.rounds, 5);
  EXPECT_EQ(report.after.first_round, 26);
  EXPECT_EQ(report.degraded_rounds, 15);
  EXPECT_EQ(timeline.degraded_rounds(), 15);
  // Degraded rounds are slower; the epoch histograms see it.
  EXPECT_GT(report.during.round_time.p50(), report.before.round_time.p50());
}

TEST(RoundTimelineTest, NoFailureMeansEverythingIsBefore) {
  RoundTimeline timeline;
  for (int r = 1; r <= 20; ++r) timeline.Add(MakeSample(r, false));
  const FailureEpochReport report = timeline.EpochReport();
  EXPECT_FALSE(report.saw_failure());
  EXPECT_EQ(report.before.rounds, 20);
  EXPECT_EQ(report.during.rounds, 0);
  EXPECT_EQ(report.after.rounds, 0);
}

TEST(RoundTimelineTest, FailureAtRoundZeroLeavesBeforeEmpty) {
  // A disk that is already dead when the server starts: the first
  // sample is degraded, so the report has no "before" epoch at all.
  RoundTimeline timeline;
  for (int r = 1; r <= 12; ++r) timeline.Add(MakeSample(r, r <= 6));
  const FailureEpochReport report = timeline.EpochReport();
  EXPECT_TRUE(report.saw_failure());
  EXPECT_EQ(report.before.rounds, 0);
  EXPECT_EQ(report.during.rounds, 6);
  EXPECT_EQ(report.during.first_round, 1);
  EXPECT_EQ(report.during.last_round, 6);
  EXPECT_EQ(report.after.rounds, 6);
  EXPECT_EQ(report.after.first_round, 7);
}

TEST(RoundTimelineTest, SingleDegradedRoundIsAOneRoundDuringEpoch) {
  // Swap and repair inside one round: exactly one degraded sample,
  // bracketed by healthy rounds on both sides.
  RoundTimeline timeline;
  for (int r = 1; r <= 9; ++r) timeline.Add(MakeSample(r, r == 5));
  const FailureEpochReport report = timeline.EpochReport();
  EXPECT_TRUE(report.saw_failure());
  EXPECT_EQ(report.before.rounds, 4);
  EXPECT_EQ(report.before.last_round, 4);
  EXPECT_EQ(report.during.rounds, 1);
  EXPECT_EQ(report.during.first_round, 5);
  EXPECT_EQ(report.during.last_round, 5);
  EXPECT_EQ(report.after.rounds, 4);
  EXPECT_EQ(report.after.first_round, 6);
  EXPECT_EQ(report.degraded_rounds, 1);
}

TEST(RoundTimelineTest, ZeroFailuresKeepsDuringAndAfterEmpty) {
  RoundTimeline timeline;
  timeline.Add(MakeSample(1, false));
  const FailureEpochReport report = timeline.EpochReport();
  EXPECT_FALSE(report.saw_failure());
  EXPECT_EQ(report.before.rounds, 1);
  EXPECT_EQ(report.before.first_round, 1);
  EXPECT_EQ(report.before.last_round, 1);
  EXPECT_EQ(report.during.rounds, 0);
  EXPECT_EQ(report.after.rounds, 0);
  EXPECT_EQ(report.degraded_rounds, 0);
}

TEST(RoundTimelineTest, BoundedRingKeepsMostRecent) {
  RoundTimeline timeline(/*capacity=*/8);
  for (int r = 1; r <= 100; ++r) timeline.Add(MakeSample(r, r > 90));
  EXPECT_EQ(timeline.size(), 8u);
  EXPECT_EQ(timeline.total_recorded(), 100);
  EXPECT_EQ(timeline.dropped(), 92);
  const auto samples = timeline.Samples();
  ASSERT_EQ(samples.size(), 8u);
  EXPECT_EQ(samples.front().round, 93);
  EXPECT_EQ(samples.back().round, 100);
  // Full-run aggregates are not windowed.
  EXPECT_EQ(timeline.degraded_rounds(), 10);
  EXPECT_EQ(timeline.round_time_histogram().count(), 100);
}

// ------------------------------------------------------------------- Export

TEST(JsonWriterTest, StructureAndEscaping) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").Value("a\"b\\c\nd");
  json.Key("n").Value(std::int64_t{42});
  json.Key("x").Value(1.5);
  json.Key("flag").Value(true);
  json.Key("inf").Value(std::numeric_limits<double>::infinity());
  json.Key("arr").BeginArray().Value(1).Value(2).EndArray();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"x\":1.5,"
            "\"flag\":true,\"inf\":null,\"arr\":[1,2]}");
}

TEST(ExportTest, CsvTableRoundTrip) {
  CsvTable table;
  table.columns = {"scheme", "p", "value"};
  table.AddRow({"declustered", "4", "123"});
  table.AddRow({"dynamic", "8", "456"});
  EXPECT_EQ(table.ToCsv(),
            "scheme,p,value\ndeclustered,4,123\ndynamic,8,456\n");
}

// The acceptance scenario: a simulation with a mid-run FailDisk must
// export a JSON report with round-time percentiles, per-disk read /
// recovery-read distributions (with LoadImbalance) and a degraded-mode
// timeline.
TEST(ExportTest, FailureRunProducesFullJsonReport) {
  constexpr std::int64_t kBlockSize = 16;
  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = 9;
  options.parity_group = 3;
  options.q = 8;
  options.f = 2;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());
  DiskArray array(9, DiskParams::Sigmod96(), kBlockSize);
  for (std::int64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(WriteDataBlock(*setup->layout, array, 0, i,
                               PatternBlock(0, i, kBlockSize))
                    .ok());
  }
  MetricsRegistry registry;
  ServerConfig config;
  config.block_size = kBlockSize;
  config.time_rounds = true;
  config.metrics = &registry;
  Server server(&array, setup->controller.get(), config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.TryAdmit(i, 0, i * 2, 60));
  }
  ASSERT_TRUE(server.RunRounds(15).ok());
  ASSERT_TRUE(server.FailDisk(2).ok());
  ASSERT_TRUE(server.RunRounds(60).ok());
  array.ExportMetrics(&registry);

  // The run really went degraded and reconstructed.
  EXPECT_GT(server.timeline().degraded_rounds(), 0);
  std::int64_t recovery_total = 0;
  for (std::int64_t r : server.metrics().per_disk_recovery_reads) {
    recovery_total += r;
  }
  EXPECT_GT(recovery_total, 0);

  BenchReport report;
  report.bench = "obs_test";
  report.scheme = "declustered";
  report.params = {{"d", 9}, {"p", 3}, {"q", 8}};
  report.metrics = &registry;
  report.timeline = &server.timeline();
  report.per_disk = {
      PerDiskSeries{"reads", server.metrics().per_disk_reads},
      PerDiskSeries{"recovery_reads",
                    server.metrics().per_disk_recovery_reads}};
  const std::string json = report.ToJson();

  for (const char* needle :
       {"\"p50\":", "\"p95\":", "\"p99\":", "\"load_imbalance\":",
        "\"degraded_rounds\":", "\"degraded_spans\":",
        "\"degraded\":true", "\"server.round_time_s\":",
        "\"recovery_reads\":", "\"epochs\":", "\"during\":",
        "\"buffer.occupancy_blocks\":", "\"disk.2.rejected_ios\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Round-trip through a file.
  const std::string path =
      ::testing::TempDir() + "/obs_export_test.json";
  ASSERT_TRUE(report.WriteJsonFile(path).ok());
}

// ----------------------------------------------- Instrumented subsystems

TEST(ObsIntegrationTest, ServerPublishesRegistryMetrics) {
  constexpr std::int64_t kBlockSize = 16;
  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = 9;
  options.parity_group = 3;
  options.q = 8;
  options.f = 2;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());
  DiskArray array(9, DiskParams::Sigmod96(), kBlockSize);
  for (std::int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(WriteDataBlock(*setup->layout, array, 0, i,
                               PatternBlock(0, i, kBlockSize))
                    .ok());
  }
  MetricsRegistry registry;
  ServerConfig config;
  config.block_size = kBlockSize;
  config.metrics = &registry;
  Server server(&array, setup->controller.get(), config);
  ASSERT_TRUE(server.TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(server.RunRounds(45).ok());

  EXPECT_EQ(registry.counter("server.rounds")->value(), 45);
  EXPECT_EQ(registry.counter("server.deliveries")->value(),
            server.metrics().deliveries);
  EXPECT_EQ(registry.counter("server.reads")->value(),
            server.metrics().total_reads);
  EXPECT_EQ(registry.counter("server.hiccups")->value(), 0);
  // Buffer pool occupancy was sampled and the high-water gauge tracks
  // the pool's own high-water mark.
  EXPECT_GT(registry.FindHistogram("buffer.occupancy_blocks")->count(), 0);
  EXPECT_DOUBLE_EQ(
      registry.FindGauge("buffer.high_water_blocks")->value(),
      static_cast<double>(server.metrics().buffer_high_water_blocks));
  // Per-disk queue-depth histograms exist for disks that served reads.
  std::int64_t disk_round_reads = 0;
  for (int d = 0; d < 9; ++d) {
    const Histogram* h = registry.FindHistogram(
        "disk." + std::to_string(d) + ".round_reads");
    ASSERT_NE(h, nullptr);
    disk_round_reads += h->count();
  }
  EXPECT_GT(disk_round_reads, 0);

  // The timeline saw every round, all healthy.
  EXPECT_EQ(server.timeline().total_recorded(), 45);
  EXPECT_EQ(server.timeline().degraded_rounds(), 0);
}

TEST(ObsIntegrationTest, TimelineCapacityBoundsServerTimeline) {
  constexpr std::int64_t kBlockSize = 16;
  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = 9;
  options.parity_group = 3;
  options.q = 8;
  options.f = 2;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());
  DiskArray array(9, DiskParams::Sigmod96(), kBlockSize);
  ServerConfig config;
  config.block_size = kBlockSize;
  config.timeline_capacity = 10;
  Server server(&array, setup->controller.get(), config);
  ASSERT_TRUE(server.RunRounds(100).ok());
  EXPECT_EQ(server.timeline().size(), 10u);
  EXPECT_EQ(server.timeline().total_recorded(), 100);
  EXPECT_EQ(server.timeline().Samples().front().round, 91);
}

TEST(ObsIntegrationTest, DiskArrayExportsPerDiskCounters) {
  DiskArray array(3, DiskParams::Sigmod96(), 16);
  const Block data(16, 7);
  ASSERT_TRUE(array.Write(BlockAddress{0, 0}, data).ok());
  ASSERT_TRUE(array.Write(BlockAddress{1, 0}, data).ok());
  ASSERT_TRUE(array.Read(BlockAddress{0, 0}).ok());
  ASSERT_TRUE(array.Read(BlockAddress{0, 1}).ok());
  ASSERT_TRUE(array.FailDisk(2).ok());
  EXPECT_FALSE(array.Read(BlockAddress{2, 0}).ok());

  MetricsRegistry registry;
  array.ExportMetrics(&registry);
  EXPECT_EQ(registry.counter("disk.0.reads")->value(), 2);
  EXPECT_EQ(registry.counter("disk.0.writes")->value(), 1);
  EXPECT_EQ(registry.counter("disk.1.writes")->value(), 1);
  EXPECT_EQ(registry.counter("disk.2.rejected_ios")->value(), 1);
  EXPECT_DOUBLE_EQ(registry.gauge("disk.failed")->value(), 2.0);
}

TEST(ObsIntegrationTest, RebuilderPublishesProgressAndEta) {
  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = 9;
  options.parity_group = 3;
  options.q = 8;
  options.f = 2;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());
  DiskArray array(9, DiskParams::Sigmod96(), 16);
  for (std::int64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(WriteDataBlock(*setup->layout, array, 0, i,
                               PatternBlock(0, i, 16))
                    .ok());
  }
  const std::int64_t scan = array.disk(4).HighestWrittenBlock() + 1;
  ASSERT_GT(scan, 0);
  ASSERT_TRUE(array.FailDisk(4).ok());
  ASSERT_TRUE(array.StartRebuild(4).ok());
  MetricsRegistry registry;
  Rebuilder rebuilder(setup->layout.get(), &array, 4, scan, /*budget=*/2);
  rebuilder.AttachMetrics(&registry);
  ASSERT_TRUE(rebuilder.RunToCompletion().ok());
  EXPECT_DOUBLE_EQ(registry.gauge("rebuild.progress")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("rebuild.eta_rounds")->value(), 0.0);
  const Histogram* blocks =
      registry.FindHistogram("rebuild.blocks_per_round");
  ASSERT_NE(blocks, nullptr);
  EXPECT_EQ(blocks->count(), rebuilder.stats().rounds);
  EXPECT_DOUBLE_EQ(blocks->sum(),
                   static_cast<double>(rebuilder.stats().blocks_rebuilt));
}

}  // namespace
}  // namespace cmfs
