#include "sim/fault_schedule.h"

#include <gtest/gtest.h>

#include <vector>

// The scripted fault timeline must be (a) structurally validated before
// anything runs, (b) deterministic: every injection decision is a pure
// function of (seed, round, disk, block, attempt), independent of the
// order other blocks are probed in, and (c) bounded: one (round, block)
// fails at most max_consecutive_failures attempts, so bounded retry
// always converges.

namespace cmfs {
namespace {

FaultSchedule StormSchedule() {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{1, 5, 15, 1.0, 2});
  schedule.slow_windows.push_back(SlowWindow{2, 20, 28, 1});
  schedule.fail_stops.push_back(FailStopEvent{3, 35});
  schedule.swaps.push_back(SwapEvent{3, 45, 2});
  schedule.fail_stops.push_back(FailStopEvent{0, 70});
  return schedule;
}

TEST(FaultScheduleTest, ValidScheduleValidates) {
  EXPECT_TRUE(StormSchedule().Validate(8, 100).ok());
}

TEST(FaultScheduleTest, EmptyScheduleIsCleanAndValid) {
  FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_TRUE(schedule.Validate(4, 10).ok());
  EXPECT_EQ(schedule.ToString(), "FaultSchedule{clean}");
  EXPECT_EQ(schedule.EpochBoundaries(10), std::vector<std::int64_t>{0});
}

TEST(FaultScheduleTest, RejectsOutOfRangeDisk) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{8, 0, 5, 1.0, 2});
  Status st = schedule.Validate(8, 100);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FaultScheduleTest, RejectsWindowPastEndOfRun) {
  FaultSchedule schedule;
  schedule.slow_windows.push_back(SlowWindow{0, 90, 110, 1});
  EXPECT_EQ(schedule.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultScheduleTest, RejectsInvertedWindow) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{0, 10, 5, 1.0, 2});
  EXPECT_EQ(schedule.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultScheduleTest, RejectsBadProbabilityAndBounds) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{0, 0, 5, 1.5, 2});
  EXPECT_EQ(schedule.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);

  FaultSchedule schedule2;
  schedule2.transients.push_back(TransientWindow{0, 0, 5, 0.5, 0});
  EXPECT_EQ(schedule2.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);

  FaultSchedule schedule3;
  schedule3.slow_windows.push_back(SlowWindow{0, 0, 5, 0});
  EXPECT_EQ(schedule3.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultScheduleTest, RejectsSwapWithoutPrecedingFailStop) {
  FaultSchedule schedule;
  schedule.swaps.push_back(SwapEvent{2, 50, 1});
  EXPECT_EQ(schedule.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);

  // A fail-stop of a *different* disk does not legalize the swap.
  schedule.fail_stops.push_back(FailStopEvent{1, 10});
  EXPECT_EQ(schedule.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultScheduleTest, RejectsFailAndSwapInSameRound) {
  FaultSchedule schedule;
  schedule.fail_stops.push_back(FailStopEvent{2, 50});
  schedule.swaps.push_back(SwapEvent{2, 50, 1});
  EXPECT_EQ(schedule.Validate(8, 100).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultScheduleTest, EpochBoundariesCutAtEveryEventEdge) {
  const FaultSchedule schedule = StormSchedule();
  const std::vector<std::int64_t> expected = {0, 5, 16, 20, 29, 35, 45, 70};
  EXPECT_EQ(schedule.EpochBoundaries(100), expected);
  // Edges at or past total_rounds are dropped.
  const std::vector<std::int64_t> truncated = {0, 5, 16, 20, 29, 35};
  EXPECT_EQ(schedule.EpochBoundaries(40), truncated);
}

TEST(ScheduledFaultInjectorTest, NoFaultsBeforeFirstRound) {
  const FaultSchedule schedule = StormSchedule();
  ScheduledFaultInjector injector(&schedule, 42);
  // Population / setup I/O happens before BeginRound: never faulted.
  for (std::int64_t block = 0; block < 100; ++block) {
    EXPECT_FALSE(injector.FailRead(1, block));
  }
  EXPECT_EQ(injector.injected_errors(), 0);
}

TEST(ScheduledFaultInjectorTest, CertainFaultFailsExactlyMaxConsecutive) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{1, 0, 10, 1.0, 2});
  ScheduledFaultInjector injector(&schedule, 42);
  injector.BeginRound(3);
  EXPECT_TRUE(injector.FailRead(1, 7));
  EXPECT_TRUE(injector.FailRead(1, 7));
  // Bound reached: all later attempts on this (round, block) succeed.
  EXPECT_FALSE(injector.FailRead(1, 7));
  EXPECT_FALSE(injector.FailRead(1, 7));
  // A different block has its own budget...
  EXPECT_TRUE(injector.FailRead(1, 8));
  // ...and a new round resets it.
  injector.BeginRound(4);
  EXPECT_TRUE(injector.FailRead(1, 7));
  EXPECT_EQ(injector.injected_errors(), 4);
}

TEST(ScheduledFaultInjectorTest, OnlyWindowedDisksAndRoundsFault) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{1, 5, 10, 1.0, 2});
  ScheduledFaultInjector injector(&schedule, 42);
  injector.BeginRound(4);  // before the window
  EXPECT_FALSE(injector.FailRead(1, 0));
  injector.BeginRound(5);
  EXPECT_TRUE(injector.FailRead(1, 0));
  EXPECT_FALSE(injector.FailRead(2, 0));  // other disk untouched
  injector.BeginRound(11);  // after the window
  EXPECT_FALSE(injector.FailRead(1, 0));
}

TEST(ScheduledFaultInjectorTest, ZeroProbabilityNeverFaults) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{0, 0, 50, 0.0, 2});
  ScheduledFaultInjector injector(&schedule, 42);
  for (std::int64_t round = 0; round <= 50; ++round) {
    injector.BeginRound(round);
    for (std::int64_t block = 0; block < 20; ++block) {
      EXPECT_FALSE(injector.FailRead(0, block));
    }
  }
  EXPECT_EQ(injector.injected_errors(), 0);
}

TEST(ScheduledFaultInjectorTest, DecisionsIndependentOfProbeOrder) {
  // Two injectors over the same schedule+seed, probed in opposite block
  // orders, must produce the same outcome sequence per block — fault
  // decisions are keyed hashes, not draws from a shared stream.
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{0, 0, 10, 0.5, 3});
  schedule.transients.push_back(TransientWindow{1, 0, 10, 0.5, 3});
  ScheduledFaultInjector forward(&schedule, 7);
  ScheduledFaultInjector backward(&schedule, 7);

  for (std::int64_t round = 0; round <= 10; ++round) {
    forward.BeginRound(round);
    backward.BeginRound(round);
    std::vector<bool> fwd;
    std::vector<bool> bwd(2 * 16 * 3);
    for (int disk = 0; disk < 2; ++disk) {
      for (std::int64_t block = 0; block < 16; ++block) {
        for (int attempt = 0; attempt < 3; ++attempt) {
          fwd.push_back(forward.FailRead(disk, block));
        }
      }
    }
    for (int disk = 1; disk >= 0; --disk) {
      for (std::int64_t block = 15; block >= 0; --block) {
        for (int attempt = 0; attempt < 3; ++attempt) {
          const std::size_t idx = static_cast<std::size_t>(
              (disk * 16 + block) * 3 + attempt);
          bwd[idx] = backward.FailRead(disk, block);
        }
      }
    }
    ASSERT_EQ(fwd.size(), bwd.size());
    EXPECT_EQ(fwd, bwd) << "round " << round;
  }
  EXPECT_EQ(forward.injected_errors(), backward.injected_errors());
}

TEST(ScheduledFaultInjectorTest, SameSeedReplaysIdentically) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{0, 0, 20, 0.3, 2});
  ScheduledFaultInjector a(&schedule, 99);
  ScheduledFaultInjector b(&schedule, 99);
  ScheduledFaultInjector c(&schedule, 100);  // different seed
  std::int64_t differs_from_c = 0;
  for (std::int64_t round = 0; round <= 20; ++round) {
    a.BeginRound(round);
    b.BeginRound(round);
    c.BeginRound(round);
    for (std::int64_t block = 0; block < 32; ++block) {
      const bool fa = a.FailRead(0, block);
      EXPECT_EQ(fa, b.FailRead(0, block));
      if (fa != c.FailRead(0, block)) ++differs_from_c;
    }
  }
  EXPECT_EQ(a.injected_errors(), b.injected_errors());
  EXPECT_GT(differs_from_c, 0);  // the seed actually matters
}

TEST(ScheduledFaultInjectorTest, QuotaCapAnswersSlowWindows) {
  FaultSchedule schedule;
  schedule.slow_windows.push_back(SlowWindow{2, 10, 20, 3});
  schedule.slow_windows.push_back(SlowWindow{2, 15, 18, 2});  // tighter
  ScheduledFaultInjector injector(&schedule, 1);
  EXPECT_EQ(injector.QuotaCap(2, 8), 8);  // before BeginRound
  injector.BeginRound(9);
  EXPECT_EQ(injector.QuotaCap(2, 8), 8);
  injector.BeginRound(10);
  EXPECT_EQ(injector.QuotaCap(2, 8), 3);
  EXPECT_EQ(injector.QuotaCap(1, 8), 8);  // other disk uncapped
  injector.BeginRound(16);
  EXPECT_EQ(injector.QuotaCap(2, 8), 2);  // tightest active window wins
  injector.BeginRound(21);
  EXPECT_EQ(injector.QuotaCap(2, 8), 8);
}

TEST(ScheduledFaultInjectorTest, InTransientWindowTracksSchedule) {
  FaultSchedule schedule;
  schedule.transients.push_back(TransientWindow{4, 7, 9, 1.0, 1});
  ScheduledFaultInjector injector(&schedule, 1);
  EXPECT_FALSE(injector.InTransientWindow(4));
  injector.BeginRound(7);
  EXPECT_TRUE(injector.InTransientWindow(4));
  EXPECT_FALSE(injector.InTransientWindow(3));
  injector.BeginRound(10);
  EXPECT_FALSE(injector.InTransientWindow(4));
}

}  // namespace
}  // namespace cmfs
