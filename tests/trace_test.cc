#include "core/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/content.h"
#include "core/controller_factory.h"
#include "core/server.h"
#include "layout/layout.h"

namespace cmfs {
namespace {

constexpr std::int64_t kBlockSize = 16;

struct Rig {
  ServerSetup setup;
  std::unique_ptr<DiskArray> array;
  std::unique_ptr<Trace> trace;
  std::unique_ptr<Server> server;
};

// When `sink` is non-null the server records into it instead of the
// rig's own unbounded Trace.
Rig MakeRig(Scheme scheme, int d, int p, int q, int f,
            TraceSink* sink = nullptr) {
  Rig rig;
  SetupOptions options;
  options.scheme = scheme;
  options.num_disks = d;
  options.parity_group = p;
  options.q = q;
  options.f = f;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  CMFS_CHECK(setup.ok());
  rig.setup = *std::move(setup);
  rig.array =
      std::make_unique<DiskArray>(d, DiskParams::Sigmod96(), kBlockSize);
  for (int space = 0; space < rig.setup.layout->num_spaces(); ++space) {
    const std::int64_t limit =
        std::min<std::int64_t>(500, rig.setup.layout->space_capacity(space));
    for (std::int64_t i = 0; i < limit; ++i) {
      CMFS_CHECK(WriteDataBlock(*rig.setup.layout, *rig.array, space, i,
                                PatternBlock(space, i, kBlockSize))
                     .ok());
    }
  }
  rig.trace = std::make_unique<Trace>();
  ServerConfig config;
  config.block_size = kBlockSize;
  config.trace = sink != nullptr ? sink : rig.trace.get();
  rig.server = std::make_unique<Server>(rig.array.get(),
                                        rig.setup.controller.get(), config);
  return rig;
}

// The continuity guarantee, measured: once playing, every stream gets
// exactly one block per round — max inter-delivery gap 1 — even through
// a mid-playback disk failure.
struct JitterCase {
  Scheme scheme;
  int d, p, q, f;
  int expected_startup;  // rounds from admission to first delivery
};

class TraceJitterTest : public ::testing::TestWithParam<JitterCase> {};

TEST_P(TraceJitterTest, DeliveryJitterIsOneEvenThroughFailure) {
  const JitterCase c = GetParam();
  Rig rig = MakeRig(c.scheme, c.d, c.p, c.q, c.f);
  const int span = c.p - 1;
  int admitted = 0;
  for (int i = 0; i < 6; ++i) {
    if (rig.server->TryAdmit(i, 0, i * span, 60 - 60 % span)) ++admitted;
  }
  ASSERT_GT(admitted, 2);
  ASSERT_TRUE(rig.server->RunRounds(15).ok());
  ASSERT_TRUE(rig.server->FailDisk(2).ok());
  ASSERT_TRUE(rig.server->RunRounds(90).ok());

  const auto gaps = rig.trace->MaxDeliveryGaps();
  EXPECT_EQ(gaps.size(), static_cast<std::size_t>(admitted));
  for (const auto& [stream, gap] : gaps) {
    EXPECT_EQ(gap, 1) << SchemeName(c.scheme) << " stream " << stream;
  }
  const auto startup = rig.trace->StartupLatencies();
  for (const auto& [stream, latency] : startup) {
    EXPECT_EQ(latency, c.expected_startup)
        << SchemeName(c.scheme) << " stream " << stream;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceJitterTest,
    ::testing::Values(
        // Non-prefetching: first delivery one round after admission.
        JitterCase{Scheme::kDeclustered, 9, 3, 8, 2, 2},
        // Prefetching: p-1 blocks buffered first.
        JitterCase{Scheme::kPrefetchParityDisk, 8, 4, 6, 0, 4},
        JitterCase{Scheme::kPrefetchFlat, 9, 4, 8, 2, 4},
        // Streaming RAID: the whole first group lands at the first
        // super-round boundary (round 1 here), so playback starts at
        // round 2.
        JitterCase{Scheme::kStreamingRaid, 8, 4, 6, 0, 2}));

TEST(TraceTest, LifecycleEventsRecordedInOrder) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->RunRounds(10).ok());
  ASSERT_TRUE(rig.server->PauseStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(3).ok());
  ASSERT_TRUE(rig.server->ResumeStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(40).ok());

  EXPECT_EQ(rig.trace->Count(TraceEventType::kAdmit), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kPause), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kResume), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kComplete), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kDelivery), 40);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kHiccup), 0);
  // Rounds are non-decreasing through the log.
  std::int64_t prev = -1;
  for (const TraceEvent& event : rig.trace->events()) {
    EXPECT_GE(event.round, prev);
    prev = event.round;
  }
  // The pause gap is excluded from jitter by design.
  const auto gaps = rig.trace->MaxDeliveryGaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps.at(0), 1);
}

TEST(TraceTest, PerDiskReadsMatchServerMetrics) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  for (int i = 0; i < 5; ++i) {
    rig.server->TryAdmit(i, 0, 10 * i, 50);
  }
  ASSERT_TRUE(rig.server->RunRounds(60).ok());
  const auto traced = rig.trace->PerDiskReads(9);
  const auto& metered = rig.server->metrics().per_disk_reads;
  ASSERT_EQ(traced.size(), metered.size());
  for (std::size_t disk = 0; disk < traced.size(); ++disk) {
    EXPECT_EQ(traced[disk], metered[disk]) << disk;
  }
  EXPECT_EQ(rig.trace->Count(TraceEventType::kRead),
            rig.server->metrics().total_reads);
}

TEST(TraceTest, CancelRecorded) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->RunRounds(5).ok());
  ASSERT_TRUE(rig.server->CancelStream(0).ok());
  EXPECT_EQ(rig.trace->Count(TraceEventType::kCancel), 1);
}

TEST(TraceTest, EventTypeNamesAreExhaustiveAndUnique) {
  std::set<std::string> names;
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    const std::string name =
        TraceEventTypeName(static_cast<TraceEventType>(i));
    EXPECT_NE(name, "unknown") << "enum value " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name " << name << " at enum value " << i;
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumTraceEventTypes));
  // A value past the enum renders as the sentinel, not UB.
  EXPECT_STREQ(
      TraceEventTypeName(static_cast<TraceEventType>(kNumTraceEventTypes)),
      "unknown");
}

// The satellite scenario: pause/resume interleaved with a mid-run disk
// failure. The pause gap stays excluded from jitter and the failure adds
// no gap — the continuity guarantee holds through both at once.
TEST(TraceTest, PauseResumeWithMidRunFailureKeepsGapsAtOne) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  int admitted = 0;
  for (int i = 0; i < 4; ++i) {
    if (rig.server->TryAdmit(i, 0, i * 2, 80)) ++admitted;
  }
  ASSERT_EQ(admitted, 4);
  ASSERT_TRUE(rig.server->RunRounds(10).ok());
  ASSERT_TRUE(rig.server->PauseStream(1).ok());
  ASSERT_TRUE(rig.server->RunRounds(5).ok());
  // The disk dies while stream 1 is paused...
  ASSERT_TRUE(rig.server->FailDisk(3).ok());
  ASSERT_TRUE(rig.server->RunRounds(5).ok());
  // ...and the stream resumes into a degraded array.
  ASSERT_TRUE(rig.server->ResumeStream(1).ok());
  ASSERT_TRUE(rig.server->RunRounds(90).ok());

  EXPECT_EQ(rig.trace->Count(TraceEventType::kPause), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kResume), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kComplete), 4);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kHiccup), 0);
  const auto gaps = rig.trace->MaxDeliveryGaps();
  ASSERT_EQ(gaps.size(), 4u);
  for (const auto& [stream, gap] : gaps) {
    EXPECT_EQ(gap, 1) << "stream " << stream;
  }
  // Recovery reads really happened after the failure (degraded mode).
  std::int64_t recovery = 0;
  for (const TraceEvent& event : rig.trace->events()) {
    if (event.type == TraceEventType::kRead &&
        event.read_kind != ReadKind::kData) {
      ++recovery;
    }
  }
  EXPECT_GT(recovery, 0);
}

// Acceptance: a long degraded run through a bounded ring sink. Memory
// stays at O(capacity) while the retained window still proves the
// continuity guarantee (gap 1 for every stream in the window).
TEST(TraceTest, RingBufferSinkBoundsMemoryOnLongRun) {
  RingBufferTraceSink sink(/*capacity=*/400);
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2, &sink);
  int admitted = 0;
  for (int i = 0; i < 6; ++i) {
    if (rig.server->TryAdmit(i, 0, i * 2, 200)) ++admitted;
  }
  ASSERT_GT(admitted, 2);
  ASSERT_TRUE(rig.server->RunRounds(15).ok());
  ASSERT_TRUE(rig.server->FailDisk(2).ok());
  ASSERT_TRUE(rig.server->RunRounds(200).ok());

  EXPECT_EQ(sink.size(), sink.capacity());
  EXPECT_GT(sink.dropped(), 0);
  EXPECT_EQ(sink.total_recorded(),
            static_cast<std::int64_t>(sink.size()) + sink.dropped());
  const std::vector<TraceEvent> window = sink.Window();
  ASSERT_EQ(window.size(), sink.capacity());
  // Oldest-first ordering survives the wraparound.
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_GE(window[i].round, window[i - 1].round);
  }
  // Per-stream jitter over the retained window is still 1 — playback
  // stayed periodic deep into the degraded run.
  const auto gaps = sink.MaxDeliveryGaps();
  EXPECT_EQ(gaps.size(), static_cast<std::size_t>(admitted));
  for (const auto& [stream, gap] : gaps) {
    EXPECT_EQ(gap, 1) << "stream " << stream;
  }
  // The rendering reports the dropped prefix.
  EXPECT_NE(sink.ToString(5).find("older events dropped"),
            std::string::npos);
}

// Satellite of the QoS ledger work: the ring's data loss is a metric,
// not just a local accessor — dashboards watching `trace.dropped_events`
// see a sink sized too small for its run.
TEST(TraceTest, RingBufferSinkExportsDroppedEventsCounter) {
  MetricsRegistry registry;
  RingBufferTraceSink sink(/*capacity=*/3);
  sink.AttachMetrics(&registry);
  Counter* dropped = registry.counter("trace.dropped_events");
  TraceEvent event;
  for (int i = 0; i < 3; ++i) {
    event.round = i;
    sink.Record(event);
  }
  EXPECT_EQ(dropped->value(), 0);  // ring not yet full: nothing lost
  for (int i = 3; i < 8; ++i) {
    event.round = i;
    sink.Record(event);
  }
  EXPECT_EQ(dropped->value(), 5);
  EXPECT_EQ(dropped->value(), sink.dropped());

  // A late attach reconciles the counter with overwrites that already
  // happened before the registry existed.
  RingBufferTraceSink late(/*capacity=*/2);
  for (int i = 0; i < 6; ++i) {
    event.round = i;
    late.Record(event);
  }
  MetricsRegistry late_registry;
  late.AttachMetrics(&late_registry);
  EXPECT_EQ(late_registry.counter("trace.dropped_events")->value(), 4);
}

// The batched splice path the round engine actually uses: one
// RecordAll per phase instead of one virtual call per event. The ring's
// overflow accounting — size, dropped, total_recorded, and the exported
// trace.dropped_events counter — must come out identical to the
// per-event path, including when one batch is larger than the whole
// ring.
TEST(TraceTest, RingBufferSinkRecordAllAccountsBatchedOverflow) {
  MetricsRegistry registry;
  RingBufferTraceSink sink(/*capacity=*/4);
  sink.AttachMetrics(&registry);
  Counter* dropped = registry.counter("trace.dropped_events");

  std::vector<TraceEvent> batch(3);
  for (int i = 0; i < 3; ++i) batch[static_cast<std::size_t>(i)].round = i;
  sink.RecordAll(batch.data(), batch.size());
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 0);
  EXPECT_EQ(dropped->value(), 0);

  // Second batch crosses the full boundary mid-batch: one event fills
  // the ring, two overwrite.
  for (int i = 0; i < 3; ++i) {
    batch[static_cast<std::size_t>(i)].round = 3 + i;
  }
  sink.RecordAll(batch.data(), batch.size());
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 6);
  EXPECT_EQ(sink.dropped(), 2);
  EXPECT_EQ(dropped->value(), 2);

  // A single batch larger than the whole ring: only the last
  // `capacity` events survive, oldest first, and every overwrite is
  // counted.
  std::vector<TraceEvent> flood(10);
  for (int i = 0; i < 10; ++i) {
    flood[static_cast<std::size_t>(i)].round = 100 + i;
  }
  sink.RecordAll(flood.data(), flood.size());
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 16);
  EXPECT_EQ(sink.dropped(), 12);
  EXPECT_EQ(dropped->value(), 12);
  const std::vector<TraceEvent> window = sink.Window();
  ASSERT_EQ(window.size(), 4u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].round,
              106 + static_cast<std::int64_t>(i));
  }
}

TEST(TraceTest, CountingSinkAggregatesAndStreamsDownstream) {
  Trace downstream;
  CountingTraceSink sink(&downstream);
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2, &sink);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->TryAdmit(1, 0, 2, 40));
  ASSERT_TRUE(rig.server->RunRounds(45).ok());

  // O(1) aggregates match the full downstream trace event-for-event.
  EXPECT_EQ(sink.total(),
            static_cast<std::int64_t>(downstream.events().size()));
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    const auto type = static_cast<TraceEventType>(i);
    EXPECT_EQ(sink.Count(type), downstream.Count(type))
        << TraceEventTypeName(type);
  }
  EXPECT_EQ(sink.Count(TraceEventType::kDelivery), 80);
  const auto traced = downstream.PerDiskReads(9);
  const auto& counted = sink.per_disk_reads();
  ASSERT_LE(counted.size(), traced.size());
  for (std::size_t disk = 0; disk < counted.size(); ++disk) {
    EXPECT_EQ(counted[disk], traced[disk]) << disk;
  }
  EXPECT_EQ(sink.last_round(), downstream.events().back().round);
}

TEST(TraceTest, ToStringRendersAndTruncates) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.Record(TraceEvent{i, TraceEventType::kDelivery, 1,
                            BlockAddress{}, ReadKind::kData, 0, i});
  }
  const std::string full = trace.ToString(100);
  EXPECT_NE(full.find("[9] delivery stream=1 idx=9"), std::string::npos);
  const std::string truncated = trace.ToString(3);
  EXPECT_NE(truncated.find("(7 more)"), std::string::npos);
}

}  // namespace
}  // namespace cmfs
