#include "core/trace.h"

#include <gtest/gtest.h>

#include "core/content.h"
#include "core/controller_factory.h"
#include "core/server.h"
#include "layout/layout.h"

namespace cmfs {
namespace {

constexpr std::int64_t kBlockSize = 16;

struct Rig {
  ServerSetup setup;
  std::unique_ptr<DiskArray> array;
  std::unique_ptr<Trace> trace;
  std::unique_ptr<Server> server;
};

Rig MakeRig(Scheme scheme, int d, int p, int q, int f) {
  Rig rig;
  SetupOptions options;
  options.scheme = scheme;
  options.num_disks = d;
  options.parity_group = p;
  options.q = q;
  options.f = f;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  CMFS_CHECK(setup.ok());
  rig.setup = *std::move(setup);
  rig.array =
      std::make_unique<DiskArray>(d, DiskParams::Sigmod96(), kBlockSize);
  for (int space = 0; space < rig.setup.layout->num_spaces(); ++space) {
    const std::int64_t limit =
        std::min<std::int64_t>(500, rig.setup.layout->space_capacity(space));
    for (std::int64_t i = 0; i < limit; ++i) {
      CMFS_CHECK(WriteDataBlock(*rig.setup.layout, *rig.array, space, i,
                                PatternBlock(space, i, kBlockSize))
                     .ok());
    }
  }
  rig.trace = std::make_unique<Trace>();
  ServerConfig config;
  config.block_size = kBlockSize;
  config.trace = rig.trace.get();
  rig.server = std::make_unique<Server>(rig.array.get(),
                                        rig.setup.controller.get(), config);
  return rig;
}

// The continuity guarantee, measured: once playing, every stream gets
// exactly one block per round — max inter-delivery gap 1 — even through
// a mid-playback disk failure.
struct JitterCase {
  Scheme scheme;
  int d, p, q, f;
  int expected_startup;  // rounds from admission to first delivery
};

class TraceJitterTest : public ::testing::TestWithParam<JitterCase> {};

TEST_P(TraceJitterTest, DeliveryJitterIsOneEvenThroughFailure) {
  const JitterCase c = GetParam();
  Rig rig = MakeRig(c.scheme, c.d, c.p, c.q, c.f);
  const int span = c.p - 1;
  int admitted = 0;
  for (int i = 0; i < 6; ++i) {
    if (rig.server->TryAdmit(i, 0, i * span, 60 - 60 % span)) ++admitted;
  }
  ASSERT_GT(admitted, 2);
  ASSERT_TRUE(rig.server->RunRounds(15).ok());
  ASSERT_TRUE(rig.server->FailDisk(2).ok());
  ASSERT_TRUE(rig.server->RunRounds(90).ok());

  const auto gaps = rig.trace->MaxDeliveryGaps();
  EXPECT_EQ(gaps.size(), static_cast<std::size_t>(admitted));
  for (const auto& [stream, gap] : gaps) {
    EXPECT_EQ(gap, 1) << SchemeName(c.scheme) << " stream " << stream;
  }
  const auto startup = rig.trace->StartupLatencies();
  for (const auto& [stream, latency] : startup) {
    EXPECT_EQ(latency, c.expected_startup)
        << SchemeName(c.scheme) << " stream " << stream;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceJitterTest,
    ::testing::Values(
        // Non-prefetching: first delivery one round after admission.
        JitterCase{Scheme::kDeclustered, 9, 3, 8, 2, 2},
        // Prefetching: p-1 blocks buffered first.
        JitterCase{Scheme::kPrefetchParityDisk, 8, 4, 6, 0, 4},
        JitterCase{Scheme::kPrefetchFlat, 9, 4, 8, 2, 4},
        // Streaming RAID: the whole first group lands at the first
        // super-round boundary (round 1 here), so playback starts at
        // round 2.
        JitterCase{Scheme::kStreamingRaid, 8, 4, 6, 0, 2}));

TEST(TraceTest, LifecycleEventsRecordedInOrder) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->RunRounds(10).ok());
  ASSERT_TRUE(rig.server->PauseStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(3).ok());
  ASSERT_TRUE(rig.server->ResumeStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(40).ok());

  EXPECT_EQ(rig.trace->Count(TraceEventType::kAdmit), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kPause), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kResume), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kComplete), 1);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kDelivery), 40);
  EXPECT_EQ(rig.trace->Count(TraceEventType::kHiccup), 0);
  // Rounds are non-decreasing through the log.
  std::int64_t prev = -1;
  for (const TraceEvent& event : rig.trace->events()) {
    EXPECT_GE(event.round, prev);
    prev = event.round;
  }
  // The pause gap is excluded from jitter by design.
  const auto gaps = rig.trace->MaxDeliveryGaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps.at(0), 1);
}

TEST(TraceTest, PerDiskReadsMatchServerMetrics) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  for (int i = 0; i < 5; ++i) {
    rig.server->TryAdmit(i, 0, 10 * i, 50);
  }
  ASSERT_TRUE(rig.server->RunRounds(60).ok());
  const auto traced = rig.trace->PerDiskReads(9);
  const auto& metered = rig.server->metrics().per_disk_reads;
  ASSERT_EQ(traced.size(), metered.size());
  for (std::size_t disk = 0; disk < traced.size(); ++disk) {
    EXPECT_EQ(traced[disk], metered[disk]) << disk;
  }
  EXPECT_EQ(rig.trace->Count(TraceEventType::kRead),
            rig.server->metrics().total_reads);
}

TEST(TraceTest, CancelRecorded) {
  Rig rig = MakeRig(Scheme::kDeclustered, 9, 3, 8, 2);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->RunRounds(5).ok());
  ASSERT_TRUE(rig.server->CancelStream(0).ok());
  EXPECT_EQ(rig.trace->Count(TraceEventType::kCancel), 1);
}

TEST(TraceTest, ToStringRendersAndTruncates) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.Record(TraceEvent{i, TraceEventType::kDelivery, 1,
                            BlockAddress{}, ReadKind::kData, 0, i});
  }
  const std::string full = trace.ToString(100);
  EXPECT_NE(full.find("[9] delivery stream=1 idx=9"), std::string::npos);
  const std::string truncated = trace.ToString(3);
  EXPECT_NE(truncated.find("(7 more)"), std::string::npos);
}

}  // namespace
}  // namespace cmfs
