#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/phase_profiler.h"

// The trace-event exporter's format contract: the substrings asserted
// here match the emitter's fixed key order (ph, pid, tid, name, ts,
// dur/args), which is what tools/validate_trace.py and Perfetto parse.

namespace cmfs {
namespace {

TEST(ChromeTraceTest, EmptyTraceIsWellFormed) {
  ChromeTraceWriter trace;
  EXPECT_EQ(trace.ToJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  EXPECT_EQ(trace.num_events(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0);
}

TEST(ChromeTraceTest, CompleteEventsAndRebasing) {
  ChromeTraceWriter trace;
  // Earliest ts is 5000ns: both events re-base against it, so the trace
  // opens at ts 0 regardless of the clock's epoch.
  trace.AddComplete(0, "server.round", 7000, 2000);
  trace.AddComplete(3, "lane", 5000, 1500);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":0,"
                      "\"name\":\"server.round\",\"ts\":2,\"dur\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":3,"
                      "\"name\":\"lane\",\"ts\":0,\"dur\":1.5}"),
            std::string::npos);
}

TEST(ChromeTraceTest, ThreadNameMetadataFirstWins) {
  ChromeTraceWriter trace;
  trace.SetThreadName(2, "lane disk 1");
  trace.SetThreadName(2, "renamed");  // ignored: first name wins
  trace.AddComplete(2, "span", 0, 10);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("{\"ph\":\"M\",\"pid\":1,\"tid\":2,"
                      "\"name\":\"thread_name\","
                      "\"args\":{\"name\":\"lane disk 1\"}}"),
            std::string::npos);
  EXPECT_EQ(json.find("renamed"), std::string::npos);
  // Metadata precedes duration events.
  EXPECT_LT(json.find("thread_name"), json.find("\"span\""));
}

TEST(ChromeTraceTest, CounterEvents) {
  ChromeTraceWriter trace;
  trace.AddCounter("pool_occupancy_blocks", 1000, 64.0);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("{\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                      "\"name\":\"pool_occupancy_blocks\",\"ts\":0,"
                      "\"args\":{\"value\":64}}"),
            std::string::npos);
}

TEST(ChromeTraceTest, BoundedAtMaxEvents) {
  ChromeTraceWriter trace(4);
  for (int i = 0; i < 10; ++i) trace.AddComplete(0, "e", i * 100, 50);
  trace.AddCounter("c", 0, 1.0);
  EXPECT_EQ(trace.num_events(), 4u);
  EXPECT_EQ(trace.dropped_events(), 7);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"metadata\":{\"dropped_events\":7}"),
            std::string::npos);
}

TEST(ChromeTraceTest, NegativeDurationClampsToZero) {
  ChromeTraceWriter trace;
  trace.AddComplete(0, "e", 100, -5);
  EXPECT_NE(trace.ToJson().find("\"dur\":0"), std::string::npos);
}

TEST(ChromeTraceTest, ProfilerMirrorsSpansOntoLaneTracks) {
  FakeClock clock;
  PhaseProfiler profiler(&clock);
  ChromeTraceWriter trace;
  profiler.AttachChromeTrace(&trace);
  {
    ScopedPhaseTimer timer(&profiler, "server.round");
    clock.Advance(2'000'000);
  }
  profiler.RecordLaneSpan(0, 0, 1'000'000);
  profiler.RecordLaneSpan(3, 0, 1'500'000);
  profiler.RecordCounter("lane_critical", 2'000'000, 5.0);
  const std::string json = trace.ToJson();
  // One tid track per lane: tid = disk + 1, named via metadata.
  EXPECT_NE(json.find("\"args\":{\"name\":\"lane disk 0\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"lane disk 3\"}"),
            std::string::npos);
  // Lane duration events ride their disk's track; the track metadata,
  // not the event name, carries the disk number.
  EXPECT_NE(json.find("\"tid\":1,\"name\":\"lane\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":4,\"name\":\"lane\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":0,\"name\":\"server.round\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"lane_critical\""), std::string::npos);
  // Detaching stops the mirroring (and duration-only records never
  // produced trace events in the first place).
  profiler.AttachChromeTrace(nullptr);
  const std::size_t before = trace.num_events();
  profiler.RecordLaneSpan(1, 0, 100);
  profiler.RecordDuration("sweep.cell", 100);
  EXPECT_EQ(trace.num_events(), before);
}

TEST(ChromeTraceTest, WriteFileRoundTrips) {
  ChromeTraceWriter trace;
  trace.SetThreadName(1, "lane disk 0");
  trace.AddComplete(1, "span", 0, 10);
  const std::string path =
      testing::TempDir() + "/chrome_trace_test_out.json";
  ASSERT_TRUE(trace.WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(), trace.ToJson() + "\n");
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, WriteFileToBadPathFails) {
  ChromeTraceWriter trace;
  EXPECT_FALSE(trace.WriteFile("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace cmfs
