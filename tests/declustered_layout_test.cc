#include "layout/declustered_layout.h"

#include <gtest/gtest.h>

#include <string>

namespace cmfs {
namespace {

Design PaperExampleDesign() {
  Design d;
  d.v = 7;
  d.k = 3;
  d.sets = {{0, 1, 3}, {1, 2, 4}, {2, 3, 5}, {3, 4, 6},
            {0, 4, 5}, {1, 5, 6}, {0, 2, 6}};
  return d;
}

DeclusteredLayout PaperLayout(std::int64_t capacity = 42) {
  Result<Pgt> pgt = Pgt::FromDesign(PaperExampleDesign());
  CMFS_CHECK(pgt.ok());
  return DeclusteredLayout(*std::move(pgt), capacity);
}

// §4.1's block-to-set map with data/parity labels, disks 0..2, blocks
// 0..8 (transcribed from the paper's example):
//   disk 0: S0d S4d S6d S0d S4d S6d S0p S4p S6p
//   disk 1: S0d S1d S5d S0p S1d S5d S0d S1p S5p
//   disk 2: S1d S2d S6d S1p S2d S6p S1d S2p S6d
TEST(DeclusteredLayoutTest, PaperBlockToSetMapReproduced) {
  const DeclusteredLayout layout = PaperLayout();
  const DeclusteredCore& core = layout.core();
  struct Entry {
    int set;
    bool parity;
  };
  const Entry expected[3][9] = {
      {{0, false}, {4, false}, {6, false}, {0, false}, {4, false},
       {6, false}, {0, true}, {4, true}, {6, true}},
      {{0, false}, {1, false}, {5, false}, {0, true}, {1, false},
       {5, false}, {0, false}, {1, true}, {5, true}},
      {{1, false}, {2, false}, {6, false}, {1, true}, {2, false},
       {6, true}, {1, false}, {2, true}, {6, false}},
  };
  for (int disk = 0; disk < 3; ++disk) {
    for (std::int64_t block = 0; block < 9; ++block) {
      const int row = static_cast<int>(block % 3);
      EXPECT_EQ(core.pgt().SetAt(row, disk),
                expected[disk][block].set)
          << "disk " << disk << " block " << block;
      EXPECT_EQ(core.IsParityBlock(disk, block),
                expected[disk][block].parity)
          << "disk " << disk << " block " << block;
    }
  }
}

// The paper's full placement table (9 disk blocks x 7 disks); "P" marks
// parity blocks, D<i> the i-th data block of the concatenated super-clip.
TEST(DeclusteredLayoutTest, PaperPlacementTableReproduced) {
  const DeclusteredLayout layout = PaperLayout();
  const std::string expected[9][7] = {
      {"D0", "D1", "D2", "P", "P", "P", "P"},
      {"D7", "D8", "D9", "D10", "D11", "P", "P"},
      {"D14", "D15", "D16", "D17", "D18", "D19", "P"},
      {"D21", "P", "P", "D3", "D4", "D5", "D6"},
      {"D28", "D29", "D30", "P", "P", "D12", "D13"},
      {"D35", "D36", "P", "D38", "P", "P", "D20"},
      {"P", "D22", "D23", "D24", "D25", "D26", "D27"},
      {"P", "P", "P", "D31", "D32", "D33", "D34"},
      {"P", "P", "D37", "P", "D39", "D40", "D41"},
  };
  // Forward map every logical block and check it lands where the paper
  // says; check parity cells via IsParityBlock.
  std::string actual[9][7];
  for (int disk = 0; disk < 7; ++disk) {
    for (std::int64_t block = 0; block < 9; ++block) {
      if (layout.core().IsParityBlock(disk, block)) {
        actual[block][disk] = "P";
      }
    }
  }
  for (std::int64_t logical = 0; logical < 42; ++logical) {
    const BlockAddress addr = layout.DataAddress(0, logical);
    ASSERT_LT(addr.block, 9);
    ASSERT_TRUE(actual[addr.block][addr.disk].empty())
        << "collision at disk " << addr.disk << " block " << addr.block;
    actual[addr.block][addr.disk] = "D" + std::to_string(logical);
  }
  for (int block = 0; block < 9; ++block) {
    for (int disk = 0; disk < 7; ++disk) {
      EXPECT_EQ(actual[block][disk], expected[block][disk])
          << "disk " << disk << " block " << block;
    }
  }
}

// "P0 is the parity block for data blocks D0 and D1, while P1 is the
// parity block for data blocks D8 and D2."
TEST(DeclusteredLayoutTest, PaperParityGroupExamples) {
  const DeclusteredLayout layout = PaperLayout();
  // D0 and D1 share a group with parity on disk 3, block 0 (P0).
  const ParityGroupInfo g0 = layout.GroupOf(0, 0);
  const ParityGroupInfo g1 = layout.GroupOf(0, 1);
  EXPECT_EQ(g0.parity, (BlockAddress{3, 0}));
  EXPECT_EQ(g1.parity, (BlockAddress{3, 0}));
  ASSERT_EQ(g0.data.size(), 2u);
  EXPECT_EQ(g0.data[0], layout.DataAddress(0, 0));
  EXPECT_EQ(g0.data[1], layout.DataAddress(0, 1));
  // D8 and D2 share a group with parity on disk 4, block 0 (P1).
  const ParityGroupInfo g2 = layout.GroupOf(0, 2);
  EXPECT_EQ(g2.parity, (BlockAddress{4, 0}));
  const ParityGroupInfo g8 = layout.GroupOf(0, 8);
  EXPECT_EQ(g8.parity, (BlockAddress{4, 0}));
}

// "Block 0 on disks 0, 1 and 3 are all mapped to S0 and thus form a
// single parity group. In the three successive parity groups mapped to
// set S0 (on disk blocks 0, 3, 6), parity blocks are stored on disks 3,
// 1 and 0 respectively."
TEST(DeclusteredLayoutTest, ParityRotatesOverSetMembers) {
  const DeclusteredLayout layout = PaperLayout();
  const DeclusteredCore& core = layout.core();
  EXPECT_EQ(core.ParityMember(0, 0), 3);
  EXPECT_EQ(core.ParityMember(0, 1), 1);
  EXPECT_EQ(core.ParityMember(0, 2), 0);
  EXPECT_EQ(core.ParityMember(0, 3), 3);  // Period k.
}

TEST(DeclusteredLayoutTest, RowAdvancesOnDiskWrap) {
  const DeclusteredLayout layout = PaperLayout(200);
  // Row = (index / d) mod r: the paper's Property 2 substrate.
  for (std::int64_t i = 0; i + 1 < 200; ++i) {
    const int row = layout.RowOfIndex(i);
    const int next_row = layout.RowOfIndex(i + 1);
    if ((i + 1) % 7 == 0) {
      EXPECT_EQ(next_row, (row + 1) % 3);
    } else {
      EXPECT_EQ(next_row, row);
    }
  }
}

TEST(DeclusteredLayoutTest, DataSlotSkipsExactlyParityBlocks) {
  const DeclusteredLayout layout = PaperLayout();
  const DeclusteredCore& core = layout.core();
  for (int disk = 0; disk < 7; ++disk) {
    for (int row = 0; row < 3; ++row) {
      for (std::int64_t m = 0; m < 10; ++m) {
        const std::int64_t slot = core.DataSlot(disk, row, m);
        EXPECT_EQ(slot % 3, row);
        EXPECT_FALSE(core.IsParityBlock(disk, slot));
        if (m > 0) {
          EXPECT_GT(slot, core.DataSlot(disk, row, m - 1));
        }
      }
    }
  }
}

TEST(DeclusteredLayoutTest, StorageOverheadMatchesParityFraction) {
  // Exactly 1/k of the blocks in each (disk, row) sequence hold parity.
  const DeclusteredLayout layout = PaperLayout();
  const DeclusteredCore& core = layout.core();
  for (int disk = 0; disk < 7; ++disk) {
    int parity = 0;
    // Whole parity-rotation periods: k * r = 9 blocks each.
    const int total = 270;
    for (std::int64_t block = 0; block < total; ++block) {
      if (core.IsParityBlock(disk, block)) ++parity;
    }
    EXPECT_EQ(parity, total / 3) << disk;
  }
}

}  // namespace
}  // namespace cmfs
