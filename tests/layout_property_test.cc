#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "bibd/design_factory.h"
#include "core/content.h"
#include "layout/declustered_layout.h"
#include "layout/flat_parity_layout.h"
#include "layout/parity_disk_layout.h"
#include "layout/superclip_layout.h"

// Cross-layout property suite: every placement engine must (a) be
// injective, (b) keep data and parity disjoint, (c) maintain the
// XOR-zero parity invariant under writes, and (d) reconstruct any block
// after any single disk failure.

namespace cmfs {
namespace {

struct LayoutCase {
  std::string name;
  int num_disks;
  int parity_group;
  std::int64_t capacity;

  enum Kind { kDeclustered, kSuperclip, kParityDisk, kFlat } kind;
};

std::unique_ptr<Layout> MakeLayout(const LayoutCase& c) {
  switch (c.kind) {
    case LayoutCase::kDeclustered: {
      Result<FactoryDesign> d = BuildDesign(c.num_disks, c.parity_group);
      CMFS_CHECK(d.ok());
      Result<Pgt> pgt = Pgt::FromDesign(d->design);
      CMFS_CHECK(pgt.ok());
      return std::make_unique<DeclusteredLayout>(*std::move(pgt),
                                                 c.capacity);
    }
    case LayoutCase::kSuperclip: {
      Result<FactoryDesign> d = BuildDesign(c.num_disks, c.parity_group);
      CMFS_CHECK(d.ok());
      Result<Pgt> pgt = Pgt::FromDesign(d->design);
      CMFS_CHECK(pgt.ok());
      return std::make_unique<SuperclipLayout>(*std::move(pgt),
                                               c.capacity);
    }
    case LayoutCase::kParityDisk:
      return std::make_unique<ParityDiskLayout>(c.num_disks,
                                                c.parity_group, c.capacity);
    case LayoutCase::kFlat:
      return std::make_unique<FlatParityLayout>(c.num_disks,
                                                c.parity_group, c.capacity);
  }
  return nullptr;
}

class LayoutPropertyTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutPropertyTest, DataAddressesInjectiveAndDisjointFromParity) {
  const LayoutCase c = GetParam();
  const auto layout = MakeLayout(c);
  std::set<std::pair<int, std::int64_t>> data_addrs;
  for (int space = 0; space < layout->num_spaces(); ++space) {
    for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
      const BlockAddress addr = layout->DataAddress(space, i);
      EXPECT_TRUE(data_addrs.insert({addr.disk, addr.block}).second)
          << c.name << " space " << space << " index " << i;
      EXPECT_EQ(addr.disk, layout->DiskOf(i));
    }
  }
  // No parity block may alias a data block.
  for (int space = 0; space < layout->num_spaces(); ++space) {
    for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
      const ParityGroupInfo group = layout->GroupOf(space, i);
      EXPECT_EQ(data_addrs.count({group.parity.disk, group.parity.block}),
                0u)
          << c.name;
    }
  }
}

TEST_P(LayoutPropertyTest, GroupContainsOwnBlockOnceParityOutside) {
  const LayoutCase c = GetParam();
  const auto layout = MakeLayout(c);
  for (int space = 0; space < layout->num_spaces(); ++space) {
    for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
      const BlockAddress self = layout->DataAddress(space, i);
      const ParityGroupInfo group = layout->GroupOf(space, i);
      EXPECT_EQ(static_cast<int>(group.data.size()), c.parity_group - 1);
      int self_count = 0;
      std::set<int> disks;
      for (const BlockAddress& member : group.data) {
        if (member == self) ++self_count;
        disks.insert(member.disk);
        EXPECT_FALSE(member == group.parity);
      }
      EXPECT_EQ(self_count, 1);
      // Members occupy distinct disks (single-failure tolerance).
      EXPECT_EQ(disks.size(), group.data.size());
      EXPECT_EQ(disks.count(group.parity.disk), 0u);
    }
  }
}

TEST_P(LayoutPropertyTest, WritesKeepParityInvariant) {
  const LayoutCase c = GetParam();
  const auto layout = MakeLayout(c);
  const std::int64_t block_size = 32;
  DiskArray array(c.num_disks, DiskParams::Sigmod96(), block_size);
  for (int space = 0; space < layout->num_spaces(); ++space) {
    // Leave gaps (every third block unwritten = zeros).
    for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
      if (i % 3 == 2) continue;
      ASSERT_TRUE(WriteDataBlock(*layout, array, space, i,
                                 PatternBlock(space, i, block_size))
                      .ok());
    }
  }
  std::int64_t groups = 0;
  EXPECT_TRUE(
      VerifyParity(*layout, array, /*blocks_per_space=*/1 << 20, &groups)
          .ok());
  EXPECT_GT(groups, 0);
}

TEST_P(LayoutPropertyTest, ReconstructsEveryBlockUnderEveryFailure) {
  const LayoutCase c = GetParam();
  const auto layout = MakeLayout(c);
  const std::int64_t block_size = 16;
  DiskArray array(c.num_disks, DiskParams::Sigmod96(), block_size);
  for (int space = 0; space < layout->num_spaces(); ++space) {
    for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
      ASSERT_TRUE(WriteDataBlock(*layout, array, space, i,
                                 PatternBlock(space, i, block_size))
                      .ok());
    }
  }
  for (int failed = 0; failed < c.num_disks; ++failed) {
    ASSERT_TRUE(array.FailDisk(failed).ok());
    for (int space = 0; space < layout->num_spaces(); ++space) {
      for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
        Result<Block> block = ReadDataBlock(*layout, array, space, i);
        ASSERT_TRUE(block.ok())
            << c.name << " failed=" << failed << " index=" << i;
        EXPECT_EQ(*block, PatternBlock(space, i, block_size))
            << c.name << " failed=" << failed << " index=" << i;
      }
    }
    ASSERT_TRUE(array.RepairDisk(failed).ok());
  }
}

TEST_P(LayoutPropertyTest, PhysicalReverseMapMatchesForwardMap) {
  // GroupOfPhysical(DataAddress(i)) must be the same group as GroupOf(i),
  // and the physical block must be a member of it — the property the
  // online rebuilder relies on.
  const LayoutCase c = GetParam();
  const auto layout = MakeLayout(c);
  for (int space = 0; space < layout->num_spaces(); ++space) {
    for (std::int64_t i = 0; i < layout->space_capacity(space); ++i) {
      const BlockAddress addr = layout->DataAddress(space, i);
      Result<ParityGroupInfo> reverse = layout->GroupOfPhysical(addr);
      ASSERT_TRUE(reverse.ok()) << c.name << " index " << i;
      const ParityGroupInfo forward = layout->GroupOf(space, i);
      EXPECT_TRUE(reverse->parity == forward.parity)
          << c.name << " index " << i;
      ASSERT_EQ(reverse->data.size(), forward.data.size());
      int self = 0;
      for (const BlockAddress& member : reverse->data) {
        if (member == addr) ++self;
      }
      EXPECT_EQ(self, 1) << c.name << " index " << i;
      // The parity block's own reverse map also lands on this group.
      Result<ParityGroupInfo> via_parity =
          layout->GroupOfPhysical(forward.parity);
      ASSERT_TRUE(via_parity.ok());
      EXPECT_TRUE(via_parity->parity == forward.parity) << c.name;
    }
  }
}

TEST_P(LayoutPropertyTest, OverwriteKeepsParityConsistent) {
  const LayoutCase c = GetParam();
  const auto layout = MakeLayout(c);
  const std::int64_t block_size = 16;
  DiskArray array(c.num_disks, DiskParams::Sigmod96(), block_size);
  const std::int64_t n = std::min<std::int64_t>(
      layout->space_capacity(0), 4 * c.num_disks);
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(WriteDataBlock(*layout, array, 0, i,
                               PatternBlock(0, i, block_size))
                    .ok());
  }
  // Overwrite half the blocks with different content.
  for (std::int64_t i = 0; i < n; i += 2) {
    ASSERT_TRUE(WriteDataBlock(*layout, array, 0, i,
                               PatternBlock(7, i + 1000, block_size))
                    .ok());
  }
  EXPECT_TRUE(VerifyParity(*layout, array, n, nullptr).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutPropertyTest,
    ::testing::Values(
        LayoutCase{"declustered-7-3", 7, 3, 84, LayoutCase::kDeclustered},
        LayoutCase{"declustered-9-3", 9, 3, 108, LayoutCase::kDeclustered},
        LayoutCase{"declustered-13-4", 13, 4, 104,
                   LayoutCase::kDeclustered},
        LayoutCase{"declustered-8-4-greedy", 8, 4, 96,
                   LayoutCase::kDeclustered},
        LayoutCase{"declustered-6-6-trivial", 6, 6, 60,
                   LayoutCase::kDeclustered},
        LayoutCase{"declustered-8-2-pairs", 8, 2, 64,
                   LayoutCase::kDeclustered},
        LayoutCase{"superclip-7-3", 7, 3, 28, LayoutCase::kSuperclip},
        LayoutCase{"superclip-13-4", 13, 4, 26, LayoutCase::kSuperclip},
        LayoutCase{"paritydisk-8-4", 8, 4, 90, LayoutCase::kParityDisk},
        LayoutCase{"paritydisk-6-3", 6, 3, 64, LayoutCase::kParityDisk},
        LayoutCase{"paritydisk-4-2", 4, 2, 40, LayoutCase::kParityDisk},
        LayoutCase{"flat-9-4", 9, 4, 108, LayoutCase::kFlat},
        LayoutCase{"flat-8-3", 8, 3, 80, LayoutCase::kFlat},
        LayoutCase{"flat-32-4-wrap", 32, 4, 192, LayoutCase::kFlat},
        LayoutCase{"flat-6-4-wrap", 6, 4, 60, LayoutCase::kFlat}),
    [](const ::testing::TestParamInfo<LayoutCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cmfs
