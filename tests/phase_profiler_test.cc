#include "obs/phase_profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/trace.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "sim/failure_drill.h"
#include "util/thread_pool.h"

// The profiler's two contracts: (1) under a FakeClock every phase total
// is exact — no tolerance windows — so regressions in the timer wiring
// are caught to the nanosecond; (2) attaching a profiler to a scenario
// changes no determinism-checked byte (result string, registry JSON,
// event trace), at any lane count. Carries the `tsan-parallel` label:
// sweep cells and lane spans record from worker threads.

namespace cmfs {
namespace {

constexpr std::int64_t kMillion = 1'000'000;

TEST(FakeClockTest, AdvanceAndAutoStep) {
  FakeClock manual(100);
  EXPECT_EQ(manual.NowNanos(), 100);
  EXPECT_EQ(manual.NowNanos(), 100);  // step 0: stands still
  manual.Advance(42);
  EXPECT_EQ(manual.NowNanos(), 142);

  FakeClock stepping(0, 10);
  // Returns the pre-advance reading, then steps: consecutive readers get
  // distinct, deterministic timestamps.
  EXPECT_EQ(stepping.NowNanos(), 0);
  EXPECT_EQ(stepping.NowNanos(), 10);
  EXPECT_EQ(stepping.now_ns(), 20);
}

TEST(PhaseProfilerTest, ScopedTimerRecordsExactTotals) {
  FakeClock clock;
  PhaseProfiler profiler(&clock);
  {
    ScopedPhaseTimer timer(&profiler, "x");
    clock.Advance(5 * kMillion);
  }
  {
    ScopedPhaseTimer timer(&profiler, "x");
    clock.Advance(3 * kMillion);
  }
  {
    ScopedPhaseTimer timer(&profiler, "y");
    clock.Advance(kMillion);
  }
  const auto phases = profiler.phases();
  ASSERT_EQ(phases.count("x"), 1u);
  EXPECT_EQ(phases.at("x").count, 2);
  EXPECT_DOUBLE_EQ(phases.at("x").total_s, 0.008);
  EXPECT_EQ(phases.at("x").time_s.count(), 2);
  EXPECT_DOUBLE_EQ(phases.at("x").time_s.max(), 0.005);
  ASSERT_EQ(phases.count("y"), 1u);
  EXPECT_DOUBLE_EQ(phases.at("y").total_s, 0.001);
}

TEST(PhaseProfilerTest, NullProfilerTimerIsNoOp) {
  // Must not dereference anything; call sites stay unconditional.
  ScopedPhaseTimer timer(nullptr, "x");
}

TEST(PhaseProfilerTest, LaneRoundUtilizationMath) {
  FakeClock clock;
  PhaseProfiler profiler(&clock);
  // mean = 25ns, busiest = 40ns: ratio 0.625, idle 0.375.
  profiler.RecordLaneRound({10, 20, 30, 40});
  const auto lanes = profiler.lanes();
  EXPECT_EQ(lanes.rounds, 1);
  EXPECT_DOUBLE_EQ(lanes.busy_ratio.mean(), 0.625);
  EXPECT_DOUBLE_EQ(lanes.idle_fraction.mean(), 0.375);
  EXPECT_DOUBLE_EQ(lanes.busiest_s.mean(), 40e-9);
}

TEST(PhaseProfilerTest, EmptyAndIdleLaneRounds) {
  FakeClock clock;
  PhaseProfiler profiler(&clock);
  profiler.RecordLaneRound({});  // no active lanes: no utilization
  EXPECT_EQ(profiler.lanes().rounds, 0);
  // All-zero busy times: perfectly balanced by convention (ratio 1).
  profiler.RecordLaneRound({0, 0, 0});
  const auto lanes = profiler.lanes();
  EXPECT_EQ(lanes.rounds, 1);
  EXPECT_DOUBLE_EQ(lanes.busy_ratio.mean(), 1.0);
  EXPECT_DOUBLE_EQ(lanes.idle_fraction.mean(), 0.0);
}

TEST(PhaseProfilerTest, ConcurrentRecordDurationIsSafe) {
  FakeClock clock(0, 1);
  PhaseProfiler profiler(&clock);
  ThreadPool pool(8);
  pool.ParallelFor(256, [&profiler](std::int64_t i) {
    profiler.RecordDuration("sweep.cell", (i + 1) * 1000);
  });
  const auto phases = profiler.phases();
  ASSERT_EQ(phases.count("sweep.cell"), 1u);
  EXPECT_EQ(phases.at("sweep.cell").count, 256);
  // sum_{i=1..256} i us = 32896 us.
  EXPECT_DOUBLE_EQ(phases.at("sweep.cell").total_s, 32896e-6);
}

TEST(PhaseProfilerTest, ToStringIsDeterministicUnderFakeClock) {
  FakeClock clock;
  PhaseProfiler profiler(&clock);
  {
    ScopedPhaseTimer timer(&profiler, "server.round");
    clock.Advance(2 * kMillion);
  }
  profiler.RecordLaneRound({10, 20, 30, 40});
  const std::string report = profiler.ToString();
  EXPECT_NE(report.find("server.round"), std::string::npos);
  EXPECT_NE(report.find("lane"), std::string::npos);
  EXPECT_EQ(report, profiler.ToString());
}

// ---------------------------------------------------------------------
// End-to-end: profiler attached to a real scenario run.

ScenarioConfig StormConfig() {
  ScenarioConfig config;
  config.scheme = Scheme::kDeclustered;
  config.num_disks = 8;
  config.parity_group = 4;
  config.q = 8;
  config.f = 1;
  config.block_size = 64;
  config.num_streams = 16;
  config.stream_blocks = 60;
  config.total_rounds = 120;
  config.schedule.transients.push_back(TransientWindow{1, 5, 15, 1.0, 2});
  config.schedule.fail_stops.push_back(FailStopEvent{3, 35});
  config.schedule.swaps.push_back(SwapEvent{3, 45, 4});
  return config;
}

TEST(PhaseProfilerTest, ScenarioPhaseStructure) {
  FakeClock clock(0, 1000);  // every clock reading 1us apart
  PhaseProfiler profiler(&clock);
  ScenarioConfig config = StormConfig();
  config.profiler = &profiler;
  Result<ScenarioResult> run = RunScenario(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const auto phases = profiler.phases();
  ASSERT_EQ(phases.count("server.round"), 1u);
  const std::int64_t rounds = phases.at("server.round").count;
  EXPECT_GT(rounds, 0);
  // Every round plans and delivers exactly once.
  ASSERT_EQ(phases.count("server.plan"), 1u);
  EXPECT_EQ(phases.at("server.plan").count, rounds);
  ASSERT_EQ(phases.count("server.deliver"), 1u);
  EXPECT_EQ(phases.at("server.deliver").count, rounds);
  ASSERT_EQ(phases.count("scenario.run"), 1u);
  EXPECT_EQ(phases.at("scenario.run").count, 1);
  // The swap triggers an online rebuild, so rebuild rounds ran.
  ASSERT_EQ(phases.count("rebuild.round"), 1u);
  EXPECT_GT(phases.at("rebuild.round").count, 0);
  // Sub-phases nest inside the round span: under a monotonic clock
  // their totals cannot exceed the round total.
  double sub_total = 0.0;
  for (const char* sub : {"server.plan", "server.stage", "server.lanes",
                          "server.merge", "server.reconstruct",
                          "server.deliver"}) {
    auto it = phases.find(sub);
    if (it != phases.end()) sub_total += it->second.total_s;
  }
  EXPECT_LE(sub_total, phases.at("server.round").total_s);
  // Rounds with active lanes produced utilization samples.
  EXPECT_GT(profiler.lanes().rounds, 0);
  EXPECT_GT(phases.count("server.lane_busy"), 0u);
}

struct LaneRun {
  std::string result;
  std::string json;
  std::string trace;
};

LaneRun RunProfiled(ScenarioConfig config, int lanes) {
  MetricsRegistry registry;
  Trace trace;
  FakeClock clock(0, 1000);
  PhaseProfiler profiler(&clock);
  config.lanes = lanes;
  config.metrics = &registry;
  config.trace = &trace;
  config.profiler = &profiler;
  Result<ScenarioResult> run = RunScenario(config);
  EXPECT_TRUE(run.ok()) << "lanes=" << lanes << ": "
                        << run.status().ToString();
  LaneRun out;
  if (!run.ok()) return out;
  out.result = run->ToString();
  JsonWriter json;
  json.BeginObject();
  AppendRegistryJson(registry, &json);
  json.EndObject();
  out.json = json.TakeString();
  out.trace = FormatEvents(trace.events(), trace.size());
  return out;
}

TEST(PhaseProfilerTest, ProfiledRunStaysLaneInvariant) {
  // The side-channel guarantee: with a profiler attached, every
  // determinism-checked byte still matches across lane counts.
  const ScenarioConfig config = StormConfig();
  const LaneRun baseline = RunProfiled(config, 1);
  for (int lanes : {2, 8}) {
    const LaneRun parallel = RunProfiled(config, lanes);
    EXPECT_EQ(baseline.result, parallel.result) << "lanes=" << lanes;
    EXPECT_EQ(baseline.json, parallel.json) << "lanes=" << lanes;
    EXPECT_EQ(baseline.trace, parallel.trace) << "lanes=" << lanes;
  }
}

TEST(PhaseProfilerTest, ProfilerDoesNotChangeUnprofiledBytes) {
  // Attach vs no-attach must also agree: the profiler may not perturb
  // the simulation it observes.
  ScenarioConfig config = StormConfig();
  MetricsRegistry registry;
  Trace trace;
  config.metrics = &registry;
  config.trace = &trace;
  Result<ScenarioResult> bare = RunScenario(config);
  ASSERT_TRUE(bare.ok());
  JsonWriter json;
  json.BeginObject();
  AppendRegistryJson(registry, &json);
  json.EndObject();
  const std::string bare_json = json.TakeString();

  const LaneRun profiled = RunProfiled(StormConfig(), 1);
  EXPECT_EQ(bare->ToString(), profiled.result);
  EXPECT_EQ(bare_json, profiled.json);
}

TEST(PhaseProfilerTest, ProfileJsonSectionShape) {
  FakeClock clock;
  PhaseProfiler profiler(&clock);
  {
    ScopedPhaseTimer timer(&profiler, "server.round");
    clock.Advance(4 * kMillion);
  }
  profiler.RecordLaneRound({10, 20});
  JsonWriter json;
  json.BeginObject();
  json.Key("profile");
  AppendProfileJson(profiler, &json);
  json.EndObject();
  const std::string out = json.TakeString();
  EXPECT_NE(out.find("\"profile\":"), std::string::npos);
  EXPECT_NE(out.find("\"server.round\":{\"count\":1"), std::string::npos);
  EXPECT_NE(out.find("\"lanes\":{\"rounds\":1"), std::string::npos);
  EXPECT_NE(out.find("\"busy_ratio\""), std::string::npos);
  EXPECT_NE(out.find("\"idle_fraction\""), std::string::npos);
}

}  // namespace
}  // namespace cmfs
