#include <gtest/gtest.h>

#include <set>

#include "bibd/constructions.h"
#include "bibd/design.h"
#include "bibd/design_factory.h"

namespace cmfs {
namespace {

// The paper's Example 1: the (7, 3, 1) BIBD.
Design PaperExampleDesign() {
  Design d;
  d.v = 7;
  d.k = 3;
  d.sets = {{0, 1, 3}, {1, 2, 4}, {2, 3, 5}, {3, 4, 6},
            {0, 4, 5}, {1, 5, 6}, {0, 2, 6}};
  return d;
}

TEST(DesignTest, PaperExampleIsBibd1) {
  const Design d = PaperExampleDesign();
  ASSERT_TRUE(ValidateDesign(d).ok());
  const DesignStats stats = ComputeStats(d);
  EXPECT_EQ(stats.min_replication, 3);
  EXPECT_EQ(stats.max_replication, 3);
  EXPECT_EQ(stats.min_pair_coverage, 1);
  EXPECT_EQ(stats.max_pair_coverage, 1);
  EXPECT_TRUE(IsBibd(d, 1));
  EXPECT_FALSE(IsBibd(d, 2));
}

TEST(DesignTest, ValidationCatchesMalformedSets) {
  Design d;
  d.v = 5;
  d.k = 2;
  d.sets = {{0, 1}};
  EXPECT_TRUE(ValidateDesign(d).ok());
  d.sets = {{1, 0}};  // unsorted
  EXPECT_FALSE(ValidateDesign(d).ok());
  d.sets = {{1, 1}};  // duplicate
  EXPECT_FALSE(ValidateDesign(d).ok());
  d.sets = {{0, 5}};  // out of range
  EXPECT_FALSE(ValidateDesign(d).ok());
  d.sets = {{0, 1, 2}};  // wrong size
  EXPECT_FALSE(ValidateDesign(d).ok());
  d.sets = {};
  EXPECT_FALSE(ValidateDesign(d).ok());
}

TEST(DesignTest, BibdCountingIdentitiesHold) {
  // r*(k-1) = lambda*(v-1) and s*k = v*r for any BIBD we construct.
  for (auto [v, k] : std::vector<std::pair<int, int>>{
           {7, 3}, {13, 4}, {9, 3}, {21, 5}, {31, 6}}) {
    Result<FactoryDesign> d = BuildDesign(v, k);
    ASSERT_TRUE(d.ok()) << v << "," << k;
    ASSERT_TRUE(d->exact_bibd()) << v << "," << k;
    const int r = d->stats.min_replication;
    const int lambda = d->stats.min_pair_coverage;
    EXPECT_EQ(r * (k - 1), lambda * (v - 1)) << v << "," << k;
    EXPECT_EQ(d->design.num_sets() * k, v * r) << v << "," << k;
  }
}

TEST(CompleteDesignTest, AllPairsIsBibd1) {
  Result<Design> d = AllPairsDesign(6);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_sets(), 15);
  EXPECT_TRUE(IsBibd(*d, 1));
}

TEST(CompleteDesignTest, CompleteDesignLambda) {
  // C(5,3) = 10 sets; lambda = C(3,1) = 3.
  Result<Design> d = CompleteDesign(5, 3);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_sets(), 10);
  EXPECT_TRUE(IsBibd(*d, 3));
}

TEST(CompleteDesignTest, RejectsHugeInstances) {
  EXPECT_FALSE(CompleteDesign(64, 16).ok());
  EXPECT_FALSE(CompleteDesign(3, 5).ok());
}

TEST(TrivialDesignTest, SingleSetCoversAll) {
  Result<Design> d = TrivialDesign(8);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->num_sets(), 1);
  EXPECT_EQ(d->sets[0].size(), 8u);
  const DesignStats stats = ComputeStats(*d);
  EXPECT_EQ(stats.min_replication, 1);
  EXPECT_EQ(stats.min_pair_coverage, 1);
}

TEST(DifferenceFamilyTest, Finds7_3) {
  Result<Design> d = CyclicDifferenceFamilyDesign(7, 3);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_sets(), 7);
  EXPECT_TRUE(IsBibd(*d, 1));
  // The canonical base block {0,1,3} developed cyclically gives exactly
  // the paper's S0..S6 in order.
  EXPECT_EQ(d->sets, PaperExampleDesign().sets);
}

TEST(DifferenceFamilyTest, Finds13_4And21_5And31_6) {
  for (auto [v, k] : std::vector<std::pair<int, int>>{
           {13, 4}, {21, 5}, {31, 6}, {13, 3}, {19, 3}}) {
    Result<Design> d = CyclicDifferenceFamilyDesign(v, k);
    ASSERT_TRUE(d.ok()) << v << "," << k;
    EXPECT_TRUE(IsBibd(*d, 1)) << v << "," << k;
  }
}

TEST(DifferenceFamilyTest, RejectsArithmeticallyImpossible) {
  // k*(k-1) must divide v-1.
  EXPECT_EQ(CyclicDifferenceFamilyDesign(8, 3).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(CyclicDifferenceFamilyDesign(12, 4).status().code(),
            StatusCode::kNotFound);
}

TEST(ProjectivePlaneTest, SmallOrdersAreBibd1) {
  for (int q : {2, 3, 5, 7}) {
    Result<Design> d = ProjectivePlaneDesign(q);
    ASSERT_TRUE(d.ok()) << q;
    EXPECT_EQ(d->v, q * q + q + 1);
    EXPECT_EQ(d->k, q + 1);
    EXPECT_EQ(d->num_sets(), q * q + q + 1);
    EXPECT_TRUE(IsBibd(*d, 1)) << q;
  }
}

TEST(ProjectivePlaneTest, RejectsNonPrimePowerOrders) {
  EXPECT_FALSE(ProjectivePlaneDesign(6).ok());
  EXPECT_FALSE(ProjectivePlaneDesign(10).ok());
  EXPECT_FALSE(ProjectivePlaneDesign(1).ok());
}

TEST(AffinePlaneTest, SmallOrdersAreBibd1) {
  for (int q : {2, 3, 5}) {
    Result<Design> d = AffinePlaneDesign(q);
    ASSERT_TRUE(d.ok()) << q;
    EXPECT_EQ(d->v, q * q);
    EXPECT_EQ(d->num_sets(), q * q + q);
    EXPECT_TRUE(IsBibd(*d, 1)) << q;
  }
}

// ---- Greedy near-balanced fallback: parameterized property sweep ----

struct GreedyCase {
  int v;
  int k;
  int r;
  int max_lambda;  // quality bar the construction must meet
};

class GreedyDesignTest : public ::testing::TestWithParam<GreedyCase> {};

TEST_P(GreedyDesignTest, EquireplicateWithBoundedPairCoverage) {
  const GreedyCase c = GetParam();
  Result<Design> d = GreedyBalancedDesign(c.v, c.k, c.r, 0x5eed);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(ValidateDesign(*d).ok());
  const DesignStats stats = ComputeStats(*d);
  EXPECT_EQ(stats.min_replication, c.r);
  EXPECT_EQ(stats.max_replication, c.r);
  EXPECT_LE(stats.max_pair_coverage, c.max_lambda);
  EXPECT_EQ(d->num_sets() * c.k, c.v * c.r);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyDesignTest,
    ::testing::Values(GreedyCase{32, 4, 10, 2}, GreedyCase{32, 8, 4, 3},
                      GreedyCase{32, 16, 2, 2}, GreedyCase{16, 4, 5, 2},
                      GreedyCase{24, 6, 5, 3}, GreedyCase{12, 3, 5, 2},
                      GreedyCase{10, 5, 4, 3}, GreedyCase{8, 4, 7, 4}));

TEST(GreedyDesignTest, RejectsNonDivisibleReplication) {
  EXPECT_FALSE(GreedyBalancedDesign(10, 4, 3, 1).ok());  // 30 % 4 != 0
}

TEST(GreedyDesignTest, DeterministicForSeed) {
  Result<Design> a = GreedyBalancedDesign(16, 4, 5, 7);
  Result<Design> b = GreedyBalancedDesign(16, 4, 5, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sets, b->sets);
}

// ---- Factory dispatch ----

TEST(DesignFactoryTest, PrefersExactConstructions) {
  EXPECT_EQ(BuildDesign(32, 2)->method, "all-pairs");
  EXPECT_EQ(BuildDesign(32, 32)->method, "trivial");
  EXPECT_EQ(BuildDesign(7, 3)->method, "cyclic-difference-family");
  EXPECT_EQ(BuildDesign(9, 3)->method, "affine-plane");
  EXPECT_EQ(BuildDesign(7, 3)->stats.max_pair_coverage, 1);
}

TEST(DesignFactoryTest, FallsBackToGreedyForPaperD32) {
  for (int p : {4, 8, 16}) {
    Result<FactoryDesign> d = BuildDesign(32, p);
    ASSERT_TRUE(d.ok()) << p;
    EXPECT_EQ(d->method, "greedy-balanced") << p;
    // Replication close to the paper's ideal (d-1)/(p-1).
    const double ideal = 31.0 / (p - 1);
    EXPECT_NEAR(d->stats.min_replication, ideal, 1.0) << p;
  }
}

TEST(DesignFactoryTest, RejectsDegenerate) {
  EXPECT_FALSE(BuildDesign(1, 1).ok());
  EXPECT_FALSE(BuildDesign(4, 5).ok());
  EXPECT_FALSE(BuildDesign(4, 1).ok());
}

TEST(DesignFactoryTest, EveryDisksSetListIsDistinctSets) {
  // No disk appears twice in one set; no set duplicated per column usage.
  Result<FactoryDesign> d = BuildDesign(32, 8);
  ASSERT_TRUE(d.ok());
  for (const auto& set : d->design.sets) {
    std::set<int> uniq(set.begin(), set.end());
    EXPECT_EQ(uniq.size(), set.size());
  }
}

}  // namespace
}  // namespace cmfs
