#include <gtest/gtest.h>

#include "bibd/design_factory.h"
#include "core/declustered_controller.h"
#include "core/dynamic_controller.h"
#include "core/nonclustered_controller.h"
#include "core/prefetch_flat_controller.h"
#include "core/prefetch_parity_disk_controller.h"
#include "core/streaming_raid_controller.h"

namespace cmfs {
namespace {

DeclusteredLayout MakeDeclustered(int d, int p, std::int64_t capacity) {
  Result<FactoryDesign> design = BuildDesign(d, p);
  CMFS_CHECK(design.ok());
  Result<Pgt> pgt = Pgt::FromDesign(design->design);
  CMFS_CHECK(pgt.ok());
  return DeclusteredLayout(*std::move(pgt), capacity);
}

// ---------- Declustered (§4) ----------

TEST(DeclusteredControllerTest, EnforcesPerDiskAndPerRowCaps) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 10000);
  // q = 5, f = 1, lambda = 1 => per disk cap 4, per (disk,row) cap 1.
  DeclusteredController controller(&layout, 5, 1);
  EXPECT_EQ(controller.reserved(), 1);
  // Four streams on disk 0, rows 0,1,2 then row 0 again.
  EXPECT_TRUE(controller.TryAdmit(0, 0, 0, 100));        // disk0 row0
  EXPECT_TRUE(controller.TryAdmit(1, 0, 7, 100));        // disk0 row1
  EXPECT_TRUE(controller.TryAdmit(2, 0, 14, 100));       // disk0 row2
  EXPECT_FALSE(controller.TryAdmit(3, 0, 21, 100));      // row0 again: f
  // Different disk is fine.
  EXPECT_TRUE(controller.TryAdmit(4, 0, 1, 100));
  EXPECT_EQ(controller.num_active(), 4);
}

TEST(DeclusteredControllerTest, PerDiskCapBinds) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 10000);
  // q = 4, f = 1 => per-disk cap 3 < rows.
  DeclusteredController controller(&layout, 4, 1);
  EXPECT_TRUE(controller.TryAdmit(0, 0, 0, 100));
  EXPECT_TRUE(controller.TryAdmit(1, 0, 7, 100));
  EXPECT_TRUE(controller.TryAdmit(2, 0, 14, 100));
  EXPECT_FALSE(controller.TryAdmit(3, 0, 21, 100));
}

TEST(DeclusteredControllerTest, SlotsFreeWhenFetchingEnds) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 10000);
  DeclusteredController controller(&layout, 5, 1);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 3));
  ASSERT_FALSE(controller.TryAdmit(1, 0, 0, 3));  // Same (disk,row).
  // After 3 rounds the stream has fetched everything; slot frees even
  // though the final delivery drains one round later.
  RoundPlan plan;
  controller.Round(-1, &plan);
  controller.Round(-1, &plan);
  controller.Round(-1, &plan);
  EXPECT_TRUE(controller.TryAdmit(1, 0, 0, 3));
}

TEST(DeclusteredControllerTest, CohortMovesTogether) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 10000);
  DeclusteredController controller(&layout, 5, 1);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 100));
  controller.Round(-1, nullptr);
  // Stream moved to disk 1 row 0: that slot is now taken...
  EXPECT_FALSE(controller.TryAdmit(1, 0, 1, 100));
  // ...but its old slot (disk 0 row 0) is free again.
  EXPECT_TRUE(controller.TryAdmit(2, 0, 0, 100));
}

TEST(DeclusteredControllerTest, DegradedRoundReadsWholeGroup) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 10000);
  DeclusteredController controller(&layout, 5, 1);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 10));
  RoundPlan plan;
  controller.Round(/*failed_disk=*/0, &plan);
  // Block 0 lives on disk 0: expect k-1 = 2 recovery reads (one
  // surviving member + parity), none on the failed disk.
  ASSERT_EQ(plan.reads.size(), 2u);
  for (const RoundRead& read : plan.reads) {
    EXPECT_EQ(read.kind, ReadKind::kRecovery);
    EXPECT_NE(read.addr.disk, 0);
    EXPECT_EQ(read.index, 0);
  }
}

TEST(DeclusteredControllerTest, LambdaMaxScalesReservation) {
  // Greedy (8,4) designs have lambda_max >= 2; the controller must
  // withhold lambda_max * f.
  Result<FactoryDesign> design = BuildDesign(8, 4);
  ASSERT_TRUE(design.ok());
  ASSERT_GT(design->stats.max_pair_coverage, 1);
  Result<Pgt> pgt = Pgt::FromDesign(design->design);
  ASSERT_TRUE(pgt.ok());
  const int lambda = pgt->max_pair_coverage();
  DeclusteredLayout layout(*std::move(pgt), 10000);
  DeclusteredController controller(&layout, 10, 2);
  EXPECT_EQ(controller.reserved(), lambda * 2);
}

TEST(DeclusteredControllerTest, CancelFreesSlotImmediately) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 10000);
  DeclusteredController controller(&layout, 5, 1);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 100));
  ASSERT_FALSE(controller.TryAdmit(1, 0, 0, 100));
  EXPECT_TRUE(controller.Cancel(0));
  EXPECT_FALSE(controller.Cancel(0));  // Already gone.
  EXPECT_TRUE(controller.TryAdmit(1, 0, 0, 100));
  EXPECT_EQ(controller.num_active(), 1);
}

TEST(ControllerCancelTest, AllSchemesSupportCancel) {
  // Cancel on every controller frees the slot for an identical admit.
  ParityDiskLayout pd_layout(8, 4, 9000);
  PrefetchParityDiskController pd(&pd_layout, 1);
  ASSERT_TRUE(pd.TryAdmit(0, 0, 0, 30));
  ASSERT_FALSE(pd.TryAdmit(1, 0, 0, 30));
  ASSERT_TRUE(pd.Cancel(0));
  EXPECT_TRUE(pd.TryAdmit(1, 0, 0, 30));

  FlatParityLayout flat_layout(9, 4, 90000);
  PrefetchFlatController flat(&flat_layout, 4, 1);
  ASSERT_TRUE(flat.TryAdmit(0, 0, 0, 30));
  ASSERT_FALSE(flat.TryAdmit(1, 0, 54, 30));  // Same (disk, class).
  ASSERT_TRUE(flat.Cancel(0));
  EXPECT_TRUE(flat.TryAdmit(1, 0, 54, 30));

  ParityDiskLayout sr_layout(8, 4, 9000);
  StreamingRaidController sr(&sr_layout, 1);
  ASSERT_TRUE(sr.TryAdmit(0, 0, 0, 30));
  ASSERT_FALSE(sr.TryAdmit(1, 0, 6, 30));  // Same cluster.
  ASSERT_TRUE(sr.Cancel(0));
  EXPECT_TRUE(sr.TryAdmit(1, 0, 6, 30));

  ParityDiskLayout ncl_layout(8, 4, 9000);
  NonClusteredController ncl(&ncl_layout, 1);
  ASSERT_TRUE(ncl.TryAdmit(0, 0, 0, 30));
  ASSERT_FALSE(ncl.TryAdmit(1, 0, 0, 30));
  ASSERT_TRUE(ncl.Cancel(0));
  EXPECT_TRUE(ncl.TryAdmit(1, 0, 0, 30));
}

// ---------- Dynamic (§5) ----------

SuperclipLayout MakeSuperclip(int d, int p, std::int64_t capacity) {
  Result<FactoryDesign> design = BuildDesign(d, p);
  CMFS_CHECK(design.ok());
  Result<Pgt> pgt = Pgt::FromDesign(design->design);
  CMFS_CHECK(pgt.ok());
  return SuperclipLayout(*std::move(pgt), capacity);
}

TEST(DynamicControllerTest, AdmitsUpToInvariant) {
  const SuperclipLayout layout = MakeSuperclip(7, 3, 700);
  DynamicController controller(&layout, 4);
  int admitted = 0;
  for (int i = 0; i < 40; ++i) {
    if (controller.TryAdmit(i, i % 3, i % 7, 50)) ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 40);
  EXPECT_GE(controller.MinHeadroom(), 0);
}

TEST(DynamicControllerTest, ReservesOnlyWhereGroupsLive) {
  const SuperclipLayout layout = MakeSuperclip(7, 3, 700);
  // q = 2: a single stream reserves contingency on its two group-peer
  // disks each round; a disjoint second stream may still enter.
  DynamicController controller(&layout, 2);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 50));
  // Headroom drops by 1 serving + 1 contingency somewhere.
  EXPECT_LE(controller.MinHeadroom(), 1);
}

TEST(DynamicControllerTest, AdaptiveVsStaticMotivation) {
  // §5's motivating scenario: the static scheme rejects a clip whose
  // (disk, row) cohort is full even when bandwidth is free; the dynamic
  // scheme admits by reserving contingency only where needed.
  const int d = 7;
  Result<FactoryDesign> design = BuildDesign(d, 3);
  ASSERT_TRUE(design.ok());
  Result<Pgt> pgt_s = Pgt::FromDesign(design->design);
  Result<Pgt> pgt_d = Pgt::FromDesign(design->design);
  ASSERT_TRUE(pgt_s.ok() && pgt_d.ok());
  DeclusteredLayout static_layout(*std::move(pgt_s), 10000);
  SuperclipLayout dynamic_layout(*std::move(pgt_d), 10000);
  const int q = 8;
  DeclusteredController static_ctrl(&static_layout, q, /*f=*/1);
  DynamicController dynamic_ctrl(&dynamic_layout, q);
  // Two clips starting on the same disk and row.
  EXPECT_TRUE(static_ctrl.TryAdmit(0, 0, 0, 100));
  EXPECT_FALSE(static_ctrl.TryAdmit(1, 0, 0, 100));  // f = 1 blocks it.
  EXPECT_TRUE(dynamic_ctrl.TryAdmit(0, 0, 0, 100));
  EXPECT_TRUE(dynamic_ctrl.TryAdmit(1, 0, 0, 100));  // Dynamic admits.
}

// ---------- Prefetch with parity disks (§6.1) ----------

TEST(PrefetchParityDiskControllerTest, PerDataDiskCap) {
  ParityDiskLayout layout(8, 4, 9000);
  PrefetchParityDiskController controller(&layout, 2);
  EXPECT_TRUE(controller.TryAdmit(0, 0, 0, 30));
  EXPECT_TRUE(controller.TryAdmit(1, 0, 0, 30));
  EXPECT_FALSE(controller.TryAdmit(2, 0, 0, 30));  // Data disk 0 full.
  EXPECT_TRUE(controller.TryAdmit(3, 0, 3, 30));   // Data disk 3 free.
}

TEST(PrefetchParityDiskControllerTest, PlaybackLagIsGroupSize) {
  ParityDiskLayout layout(8, 4, 9000);
  PrefetchParityDiskController controller(&layout, 4);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 9));
  RoundPlan plan;
  // Rounds 1..p-1 = 3: fetch only, no deliveries.
  for (int r = 0; r < 3; ++r) {
    plan = RoundPlan();
    controller.Round(-1, &plan);
    EXPECT_EQ(plan.reads.size(), 1u) << r;
    EXPECT_TRUE(plan.deliveries.empty()) << r;
  }
  // Round 4: first delivery.
  plan = RoundPlan();
  controller.Round(-1, &plan);
  ASSERT_EQ(plan.deliveries.size(), 1u);
  EXPECT_EQ(plan.deliveries[0].index, 0);
}

TEST(PrefetchParityDiskControllerTest, FailedDiskCostsOneParityRead) {
  ParityDiskLayout layout(8, 4, 9000);
  PrefetchParityDiskController controller(&layout, 4);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 9));
  RoundPlan plan;
  controller.Round(/*failed_disk=*/0, &plan);
  ASSERT_EQ(plan.reads.size(), 1u);
  EXPECT_EQ(plan.reads[0].kind, ReadKind::kParity);
  // Parity disk of cluster 0 is disk 3.
  EXPECT_EQ(plan.reads[0].addr.disk, 3);
  EXPECT_EQ(plan.reads[0].index, 0);
}

// ---------- Prefetch flat (§6.2) ----------

TEST(PrefetchFlatControllerTest, PerDiskAndPerClassCaps) {
  FlatParityLayout layout(9, 4, 90000);
  // q = 4, f = 1: per disk 3, per (disk, class) 1. Class = slot mod 6.
  PrefetchFlatController controller(&layout, 4, 1);
  EXPECT_TRUE(controller.TryAdmit(0, 0, 0, 30));    // disk0 class0
  EXPECT_FALSE(controller.TryAdmit(1, 0, 54, 30));  // disk0 slot6=class0
  EXPECT_TRUE(controller.TryAdmit(2, 0, 9, 30));    // disk0 class1
  EXPECT_TRUE(controller.TryAdmit(3, 0, 18, 30));   // disk0 class2
  EXPECT_FALSE(controller.TryAdmit(4, 0, 27, 30));  // disk0 full (q-f=3)
}

TEST(PrefetchFlatControllerTest, FailureReadsGoToParityHome) {
  FlatParityLayout layout(9, 4, 90000);
  PrefetchFlatController controller(&layout, 6, 2);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 30));
  RoundPlan plan;
  controller.Round(/*failed_disk=*/0, &plan);
  ASSERT_EQ(plan.reads.size(), 1u);
  EXPECT_EQ(plan.reads[0].kind, ReadKind::kParity);
  EXPECT_EQ(plan.reads[0].addr.disk, layout.ParityDiskOfGroup(0));
}

// ---------- Streaming RAID ----------

TEST(StreamingRaidControllerTest, GroupsFetchedAtBoundaries) {
  ParityDiskLayout layout(8, 4, 9000);
  StreamingRaidController controller(&layout, 3);
  EXPECT_EQ(controller.super_round_length(), 3);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 9));
  RoundPlan plan;
  controller.Round(-1, &plan);  // Boundary: whole group.
  EXPECT_EQ(plan.reads.size(), 3u);
  plan = RoundPlan();
  controller.Round(-1, &plan);  // Mid super-round: nothing.
  EXPECT_TRUE(plan.reads.empty());
  EXPECT_EQ(plan.deliveries.size(), 1u);  // But playback proceeds.
}

TEST(StreamingRaidControllerTest, PerClusterQuota) {
  ParityDiskLayout layout(8, 4, 9000);
  StreamingRaidController controller(&layout, 2);
  // Groups 0 and 2 are in cluster 0; group 1 in cluster 1.
  EXPECT_TRUE(controller.TryAdmit(0, 0, 0, 30));   // cluster 0
  EXPECT_TRUE(controller.TryAdmit(1, 0, 6, 30));   // cluster 0 (group 2)
  EXPECT_FALSE(controller.TryAdmit(2, 0, 12, 30)); // cluster 0 full
  EXPECT_TRUE(controller.TryAdmit(3, 0, 3, 30));   // cluster 1
}

TEST(StreamingRaidControllerTest, FailureSwapsInParityRead) {
  ParityDiskLayout layout(8, 4, 9000);
  StreamingRaidController controller(&layout, 3);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 9));
  RoundPlan plan;
  controller.Round(/*failed_disk=*/1, &plan);
  ASSERT_EQ(plan.reads.size(), 3u);
  int parity_reads = 0;
  for (const RoundRead& read : plan.reads) {
    EXPECT_NE(read.addr.disk, 1);
    if (read.kind == ReadKind::kParity) ++parity_reads;
  }
  EXPECT_EQ(parity_reads, 1);
}

// ---------- Non-clustered ----------

TEST(NonClusteredControllerTest, NormalModeSingleBlockLag1) {
  ParityDiskLayout layout(8, 4, 9000);
  NonClusteredController controller(&layout, 3);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 9));
  RoundPlan plan;
  controller.Round(-1, &plan);
  EXPECT_EQ(plan.reads.size(), 1u);
  EXPECT_TRUE(plan.deliveries.empty());
  plan = RoundPlan();
  controller.Round(-1, &plan);
  EXPECT_EQ(plan.reads.size(), 1u);
  ASSERT_EQ(plan.deliveries.size(), 1u);
  EXPECT_EQ(plan.deliveries[0].index, 0);
}

TEST(NonClusteredControllerTest, DegradedModeBulkReadsOnlyFailedCluster) {
  ParityDiskLayout layout(8, 4, 9000);
  NonClusteredController controller(&layout, 3);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 12));
  // Fail disk 0 (cluster 0) before the stream starts group 0.
  RoundPlan plan;
  controller.Round(/*failed_disk=*/0, &plan);
  // Group 0 is at risk: whole-group read = 2 survivors + parity.
  ASSERT_EQ(plan.reads.size(), 3u);
  int parity_reads = 0;
  for (const RoundRead& read : plan.reads) {
    EXPECT_NE(read.addr.disk, 0);
    if (read.kind == ReadKind::kParity) ++parity_reads;
  }
  EXPECT_EQ(parity_reads, 1);
  // Next round: bulk data still queued for delivery, no new reads.
  plan = RoundPlan();
  controller.Round(0, &plan);
  EXPECT_TRUE(plan.reads.empty());
  EXPECT_EQ(plan.deliveries.size(), 1u);
  // Once the lag drains, group 1 (cluster 1) is healthy: back to
  // single-block reads.
  plan = RoundPlan();
  controller.Round(0, &plan);
  ASSERT_EQ(plan.reads.size(), 1u);
  EXPECT_EQ(plan.reads[0].kind, ReadKind::kData);
  EXPECT_EQ(plan.reads[0].index, 3);
}

TEST(NonClusteredControllerTest, MidGroupTransitionLosesFailedBlocks) {
  ParityDiskLayout layout(8, 4, 9000);
  NonClusteredController controller(&layout, 3);
  // Stream starts at group 0 (cluster 0); let it fetch block 0, then
  // fail disk 1 — block 1 (disk 1) is mid-group and lost.
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 12));
  RoundPlan plan;
  controller.Round(-1, &plan);
  ASSERT_EQ(plan.reads.size(), 1u);
  plan = RoundPlan();
  controller.Round(/*failed_disk=*/1, &plan);
  // Block 1 was on disk 1: lost (no read), delivery of block 0 happens.
  EXPECT_TRUE(plan.reads.empty());
  ASSERT_EQ(plan.deliveries.size(), 1u);
  plan = RoundPlan();
  controller.Round(1, &plan);
  // Block 2 (disk 2) is fetched normally.
  ASSERT_EQ(plan.reads.size(), 1u);
  EXPECT_EQ(plan.reads[0].addr.disk, 2);
}

TEST(NonClusteredControllerTest, ParityDiskFailureIsHarmless) {
  ParityDiskLayout layout(8, 4, 9000);
  NonClusteredController controller(&layout, 3);
  ASSERT_TRUE(controller.TryAdmit(0, 0, 0, 12));
  RoundPlan plan;
  controller.Round(/*failed_disk=*/3, &plan);  // Cluster 0's parity disk.
  ASSERT_EQ(plan.reads.size(), 1u);
  EXPECT_EQ(plan.reads[0].kind, ReadKind::kData);
}

}  // namespace
}  // namespace cmfs
