#include "core/block_arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

// The slab allocator behind the buffer pool and the round engine's
// staging blocks: block_size-strided carving, LIFO recycling, and — the
// property the round_engine benchmarks measure — zero slab growth once
// the working set is warm.

namespace cmfs {
namespace {

TEST(BlockArenaTest, AllocatesDistinctWritableBlocks) {
  BlockArena arena(64, 8);
  std::set<std::uint8_t*> blocks;
  for (int i = 0; i < 20; ++i) {
    std::uint8_t* block = arena.Allocate();
    ASSERT_NE(block, nullptr);
    std::memset(block, i, 64);  // must be writable, full stride
    EXPECT_TRUE(blocks.insert(block).second) << "duplicate live block";
  }
  EXPECT_EQ(arena.outstanding_blocks(), 20u);
  EXPECT_EQ(arena.slab_count(), 3u);  // ceil(20 / 8)
  EXPECT_EQ(arena.capacity_blocks(), 24u);
  // Writes through one block never bled into another: each still holds
  // its own fill byte.
  int i = 0;
  std::vector<std::uint8_t*> ordered(blocks.begin(), blocks.end());
  for (std::uint8_t* block : ordered) {
    // Set order != allocation order; just check homogeneity.
    for (int b = 1; b < 64; ++b) EXPECT_EQ(block[b], block[0]);
    ++i;
  }
  for (std::uint8_t* block : ordered) arena.Release(block);
  EXPECT_EQ(arena.outstanding_blocks(), 0u);
}

TEST(BlockArenaTest, ReleaseRecyclesLifo) {
  BlockArena arena(32, 4);
  std::uint8_t* a = arena.Allocate();
  std::uint8_t* b = arena.Allocate();
  arena.Release(b);
  arena.Release(a);
  // LIFO: the most recently released block comes back first (cache-warm).
  EXPECT_EQ(arena.Allocate(), a);
  EXPECT_EQ(arena.Allocate(), b);
}

TEST(BlockArenaTest, SteadyStateAllocatesNoNewSlabs) {
  BlockArena arena(128, 16);
  std::vector<std::uint8_t*> live;
  // Warm up: the working set is 40 blocks.
  for (int i = 0; i < 40; ++i) live.push_back(arena.Allocate());
  const std::int64_t warm_slabs = arena.slab_allocations();
  // A thousand churn cycles at the same working-set size: the free list
  // absorbs everything, no slab is ever added.
  for (int round = 0; round < 1000; ++round) {
    for (std::uint8_t* block : live) arena.Release(block);
    live.clear();
    for (int i = 0; i < 40; ++i) live.push_back(arena.Allocate());
  }
  EXPECT_EQ(arena.slab_allocations(), warm_slabs);
  EXPECT_EQ(arena.total_allocations(), 40 + 1000 * 40);
  for (std::uint8_t* block : live) arena.Release(block);
}

TEST(BlockArenaTest, BlocksAreStrideIsolatedWithinASlab) {
  BlockArena arena(16, 4);
  std::uint8_t* a = arena.Allocate();
  std::uint8_t* b = arena.Allocate();
  // Adjacent allocations from one slab are exactly one stride apart;
  // writing all of `a` must not touch `b`.
  std::memset(b, 0xEE, 16);
  std::memset(a, 0x11, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b[i], 0xEE);
  arena.Release(a);
  arena.Release(b);
}

TEST(ArenaBlockTest, ComparesAgainstVectorsByContent) {
  BlockArena arena(8);
  std::uint8_t* raw = arena.Allocate();
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(i);
  ArenaBlock view(raw, 8);
  const std::vector<std::uint8_t> same = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::uint8_t> different = same;
  different[3] = 99;
  const std::vector<std::uint8_t> shorter = {0, 1, 2};
  EXPECT_TRUE(view == same);
  EXPECT_TRUE(same == view);
  EXPECT_TRUE(view != different);
  EXPECT_TRUE(different != view);
  EXPECT_TRUE(view != shorter);
  EXPECT_EQ(view.size(), 8u);
  EXPECT_FALSE(view.empty());
  EXPECT_EQ(view[4], 4);
  EXPECT_TRUE(ArenaBlock().empty());
  arena.Release(raw);
}

}  // namespace
}  // namespace cmfs
