#include "core/server.h"

#include <gtest/gtest.h>

#include "analysis/continuity.h"
#include "bibd/design_factory.h"
#include "core/content.h"
#include "core/controller_factory.h"
#include "layout/layout.h"
#include "util/units.h"

namespace cmfs {
namespace {

constexpr std::int64_t kBlockSize = 32;

struct Rig {
  ServerSetup setup;
  std::unique_ptr<DiskArray> array;
  std::unique_ptr<Server> server;
};

Rig MakeRig(const SetupOptions& options, std::int64_t populate_blocks,
            bool allow_hiccups = false) {
  Rig rig;
  Result<ServerSetup> setup = MakeSetup(options);
  CMFS_CHECK(setup.ok());
  rig.setup = *std::move(setup);
  rig.array = std::make_unique<DiskArray>(
      options.num_disks, DiskParams::Sigmod96(), kBlockSize);
  for (int space = 0; space < rig.setup.layout->num_spaces(); ++space) {
    const std::int64_t limit =
        std::min(populate_blocks, rig.setup.layout->space_capacity(space));
    for (std::int64_t i = 0; i < limit; ++i) {
      CMFS_CHECK(WriteDataBlock(*rig.setup.layout, *rig.array, space, i,
                                PatternBlock(space, i, kBlockSize))
                     .ok());
    }
  }
  ServerConfig config;
  config.block_size = kBlockSize;
  config.allow_hiccups = allow_hiccups;
  rig.server = std::make_unique<Server>(rig.array.get(),
                                        rig.setup.controller.get(), config);
  return rig;
}

SetupOptions DeclusteredOptions() {
  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = 7;
  options.parity_group = 3;
  options.q = 6;
  options.f = 1;
  options.capacity_blocks = 420;
  return options;
}

TEST(ServerTest, HealthyStreamDeliversEverythingBitExact) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->RunRounds(60).ok());
  const ServerMetrics& m = rig.server->metrics();
  EXPECT_EQ(m.deliveries, 40);
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_EQ(m.completed_streams, 1);
  EXPECT_EQ(m.recovery_reads, 0);
  EXPECT_EQ(m.total_reads, 40);
}

TEST(ServerTest, FailureMidStreamStillBitExact) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 40));
  ASSERT_TRUE(rig.server->RunRounds(10).ok());
  ASSERT_TRUE(rig.server->FailDisk(2).ok());
  ASSERT_TRUE(rig.server->RunRounds(50).ok());
  const ServerMetrics& m = rig.server->metrics();
  EXPECT_EQ(m.deliveries, 40);
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_GT(m.recovery_reads, 0);
}

TEST(ServerTest, DetectsCorruptedBlocks) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  // Flip a byte behind the parity machinery's back.
  const BlockAddress addr = rig.setup.layout->DataAddress(0, 5);
  Result<Block> block = rig.array->Read(addr);
  ASSERT_TRUE(block.ok());
  (*block)[0] ^= 0xff;
  ASSERT_TRUE(rig.array->disk(addr.disk).Write(addr.block, *block).ok());
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 10));
  Status st = rig.server->RunRounds(20);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("corrupt"), std::string::npos);
}

TEST(ServerTest, EnforcesQuotaInvariant) {
  // A controller with a quota below its own admissions would trip the
  // server's window check: emulate by admitting more than q streams onto
  // one disk via a generous controller, then verifying the server's
  // accounting sees exactly the expected max window.
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  for (int i = 0; i < 4; ++i) {
    // Distinct rows of disk 0: starts 0, 7, 14 (rows 0,1,2).
    rig.server->TryAdmit(i, 0, 7 * i, 30);
  }
  ASSERT_TRUE(rig.server->RunRounds(40).ok());
  EXPECT_LE(rig.server->metrics().max_disk_window_reads, 6);
  EXPECT_GT(rig.server->metrics().max_disk_window_reads, 0);
}

TEST(ServerTest, HiccupsForbiddenByDefault) {
  SetupOptions options;
  options.scheme = Scheme::kNonClustered;
  options.num_disks = 8;
  options.parity_group = 4;
  options.q = 4;
  options.capacity_blocks = 600;
  Rig rig = MakeRig(options, 600, /*allow_hiccups=*/false);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 30));
  ASSERT_TRUE(rig.server->RunRounds(2).ok());
  // Mid-group failure on the block about to be fetched loses it.
  ASSERT_TRUE(rig.server->FailDisk(2).ok());
  Status st = rig.server->RunRounds(10);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("missed delivery"), std::string::npos);
}

TEST(ServerTest, HiccupsCountedWhenAllowed) {
  SetupOptions options;
  options.scheme = Scheme::kNonClustered;
  options.num_disks = 8;
  options.parity_group = 4;
  options.q = 4;
  options.capacity_blocks = 600;
  Rig rig = MakeRig(options, 600, /*allow_hiccups=*/true);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 30));
  ASSERT_TRUE(rig.server->RunRounds(2).ok());
  ASSERT_TRUE(rig.server->FailDisk(2).ok());
  ASSERT_TRUE(rig.server->RunRounds(40).ok());
  const ServerMetrics& m = rig.server->metrics();
  // Exactly the mid-group transition blocks are lost; playback continues.
  EXPECT_GT(m.hiccups, 0);
  EXPECT_LE(m.hiccups, 2);
  EXPECT_EQ(m.deliveries + m.hiccups, 30);
}

TEST(ServerTest, PrefetchReconstructionUsesBufferNotDisks) {
  SetupOptions options;
  options.scheme = Scheme::kPrefetchParityDisk;
  options.num_disks = 8;
  options.parity_group = 4;
  options.q = 4;
  options.capacity_blocks = 600;
  Rig rig = MakeRig(options, 600);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 30));
  ASSERT_TRUE(rig.server->FailDisk(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(40).ok());
  const ServerMetrics& m = rig.server->metrics();
  EXPECT_EQ(m.deliveries, 30);
  EXPECT_EQ(m.hiccups, 0);
  // 5 of the 30 blocks lived on data disk 0 (indices 0 mod 6): exactly
  // 5 parity reads, no whole-group recovery traffic.
  EXPECT_EQ(m.recovery_reads, 5);
  EXPECT_EQ(m.total_reads, 30);
}

TEST(ServerTest, PauseFreesSlotAndResumeReplaysCleanly) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 60));
  ASSERT_TRUE(rig.server->RunRounds(20).ok());
  const std::int64_t before = rig.server->metrics().deliveries;
  ASSERT_TRUE(rig.server->PauseStream(0).ok());
  EXPECT_EQ(rig.server->num_active(), 0);
  // While paused, the slot is free for someone else.
  ASSERT_TRUE(rig.server->TryAdmit(1, 0, 0, 10));
  ASSERT_TRUE(rig.server->RunRounds(15).ok());
  ASSERT_TRUE(rig.server->ResumeStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(60).ok());
  const ServerMetrics& m = rig.server->metrics();
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_EQ(m.completed_streams, 2);
  // Stream 0's 60 blocks + stream 1's 10, no replay for declustered.
  EXPECT_EQ(m.deliveries, 70);
  EXPECT_GT(before, 0);
}

TEST(ServerTest, PauseResumeAcrossFailure) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 60));
  ASSERT_TRUE(rig.server->RunRounds(10).ok());
  ASSERT_TRUE(rig.server->PauseStream(0).ok());
  ASSERT_TRUE(rig.server->FailDisk(1).ok());
  ASSERT_TRUE(rig.server->RunRounds(5).ok());
  ASSERT_TRUE(rig.server->ResumeStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(70).ok());
  EXPECT_EQ(rig.server->metrics().hiccups, 0);
  EXPECT_EQ(rig.server->metrics().completed_streams, 1);
}

TEST(ServerTest, ResumeAlignsToGroupBoundaryForClusteredSchemes) {
  SetupOptions options;
  options.scheme = Scheme::kPrefetchParityDisk;
  options.num_disks = 8;
  options.parity_group = 4;
  options.q = 4;
  options.capacity_blocks = 600;
  Rig rig = MakeRig(options, 600);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 30));
  // Pause mid-group (after some deliveries that are unlikely to be
  // group-aligned), then resume: the server rewinds to the boundary.
  ASSERT_TRUE(rig.server->RunRounds(11).ok());
  ASSERT_TRUE(rig.server->PauseStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(3).ok());
  ASSERT_TRUE(rig.server->ResumeStream(0).ok());
  ASSERT_TRUE(rig.server->RunRounds(60).ok());
  const ServerMetrics& m = rig.server->metrics();
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_EQ(m.completed_streams, 1);
  // All 30 blocks delivered, plus at most p-2 replayed ones.
  EXPECT_GE(m.deliveries, 30);
  EXPECT_LE(m.deliveries, 32);
}

TEST(ServerTest, CancelStreamFreesEverything) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 60));
  ASSERT_TRUE(rig.server->RunRounds(5).ok());
  ASSERT_TRUE(rig.server->CancelStream(0).ok());
  EXPECT_EQ(rig.server->num_active(), 0);
  EXPECT_EQ(rig.server->CancelStream(0).code(), StatusCode::kNotFound);
  // The slot is reusable immediately.
  EXPECT_TRUE(rig.server->TryAdmit(1, 0, 0, 10));
  ASSERT_TRUE(rig.server->RunRounds(15).ok());
  EXPECT_EQ(rig.server->metrics().completed_streams, 1);
}

TEST(ServerTest, PauseResumeErrorsAreTyped) {
  Rig rig = MakeRig(DeclusteredOptions(), 420);
  EXPECT_EQ(rig.server->PauseStream(9).code(), StatusCode::kNotFound);
  ASSERT_TRUE(rig.server->TryAdmit(0, 0, 0, 30));
  EXPECT_EQ(rig.server->ResumeStream(0).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(rig.server->PauseStream(0).ok());
  EXPECT_EQ(rig.server->PauseStream(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServerTest, RoundTimingStaysWithinContinuityBound) {
  SetupOptions options = DeclusteredOptions();
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());
  // Use a block size that satisfies Equation 1 for q = 6 under the real
  // Figure-1 disk parameters.
  const DiskParams disk = DiskParams::Sigmod96();
  const double rp = MbpsToBytesPerSec(1.5);
  const std::int64_t b = MinBlockSizeForClips(disk, rp, 6);
  ASSERT_GT(b, 0);
  DiskArray array(7, disk, b);
  for (std::int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(WriteDataBlock(*setup->layout, array, 0, i,
                               PatternBlock(0, i, b))
                    .ok());
  }
  ServerConfig config;
  config.block_size = b;
  config.time_rounds = true;
  Server server(&array, setup->controller.get(), config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.TryAdmit(i, 0, i, 60));
  }
  ASSERT_TRUE(server.FailDisk(3).ok());
  ASSERT_TRUE(server.RunRounds(30).ok());
  // Even with reconstruction reads, the worst observed round fits the
  // round length b / r_p.
  EXPECT_LE(server.metrics().max_round_time, RoundLength(rp, b));
  EXPECT_GT(server.metrics().max_round_time, 0.0);
}

}  // namespace
}  // namespace cmfs
