#include <gtest/gtest.h>

#include "disk/cscan_scheduler.h"
#include "disk/disk_array.h"
#include "disk/disk_params.h"
#include "disk/seek_model.h"
#include "disk/sim_disk.h"
#include "util/units.h"

namespace cmfs {
namespace {

TEST(DiskParamsTest, Sigmod96MatchesFigure1) {
  const DiskParams p = DiskParams::Sigmod96();
  EXPECT_DOUBLE_EQ(BytesPerSecToMbps(p.transfer_rate), 45.0);
  EXPECT_DOUBLE_EQ(SecToMs(p.settle_time), 0.6);
  EXPECT_DOUBLE_EQ(SecToMs(p.worst_seek), 17.0);
  EXPECT_DOUBLE_EQ(SecToMs(p.worst_rotational), 8.34);
  EXPECT_EQ(p.capacity_bytes, 2 * kGiB);
  // t_lat = 25.94 ms (the paper's table rounds the total to 25.5).
  EXPECT_NEAR(SecToMs(p.WorstLatency()), 17.0 + 8.34 + 0.6, 1e-9);
}

TEST(DiskParamsTest, Sigmod96ServerMatchesFigure1) {
  const ServerParams s = ServerParams::Sigmod96(256 * kMiB);
  EXPECT_DOUBLE_EQ(BytesPerSecToMbps(s.playback_rate), 1.5);
  EXPECT_EQ(s.num_disks, 32);
  EXPECT_EQ(s.buffer_bytes, 256 * kMiB);
}

TEST(DiskParamsTest, ZonedTransferInterpolatesOuterToInner) {
  const DiskParams p = DiskParams::Sigmod96Zoned(2.0);
  EXPECT_DOUBLE_EQ(p.TransferRateAt(0), 2.0 * p.transfer_rate);
  EXPECT_DOUBLE_EQ(p.TransferRateAt(p.num_cylinders - 1),
                   p.transfer_rate);
  const double mid = p.TransferRateAt(p.num_cylinders / 2);
  EXPECT_GT(mid, p.transfer_rate);
  EXPECT_LT(mid, 2.0 * p.transfer_rate);
}

TEST(DiskParamsTest, UnzonedTransferIsFlat) {
  const DiskParams p = DiskParams::Sigmod96();
  EXPECT_DOUBLE_EQ(p.TransferRateAt(0), p.transfer_rate);
  EXPECT_DOUBLE_EQ(p.TransferRateAt(1234), p.transfer_rate);
}

TEST(CScanTest, ZonedRoundsAreNeverSlowerThanFlat) {
  const DiskParams flat = DiskParams::Sigmod96();
  const DiskParams zoned = DiskParams::Sigmod96Zoned(1.6);
  CScanScheduler flat_sched(flat, SeekCurve::kLinear);
  CScanScheduler zoned_sched(zoned, SeekCurve::kLinear);
  const std::vector<int> cylinders = {10, 500, 999, 1500, 1990};
  const RoundTiming t_flat =
      flat_sched.TimeRound(cylinders, 256 * kKiB, nullptr);
  const RoundTiming t_zoned =
      zoned_sched.TimeRound(cylinders, 256 * kKiB, nullptr);
  EXPECT_LT(t_zoned.transfer_time, t_flat.transfer_time);
  EXPECT_DOUBLE_EQ(t_zoned.seek_time, t_flat.seek_time);
}

TEST(SeekModelTest, LinearAnchorsFullStroke) {
  const DiskParams p = DiskParams::Sigmod96();
  SeekModel model(p, SeekCurve::kLinear);
  EXPECT_DOUBLE_EQ(model.SeekTime(0), 0.0);
  EXPECT_NEAR(model.SeekTime(p.num_cylinders - 1), p.worst_seek, 1e-12);
  // Linear: half the distance, half the time.
  EXPECT_NEAR(model.SeekTime((p.num_cylinders - 1) / 2),
              p.worst_seek / 2.0, p.worst_seek / (p.num_cylinders - 1));
}

TEST(SeekModelTest, LinearSweepSumsToAtMostFullStroke) {
  const DiskParams p = DiskParams::Sigmod96();
  SeekModel model(p, SeekCurve::kLinear);
  // Any partition of the stroke into segments costs exactly one stroke —
  // the accounting behind Equation 1's 2*t_seek term.
  double total = 0.0;
  int pos = 0;
  for (int next = 7; next < p.num_cylinders; next += 97) {
    total += model.SeekTime(next - pos);
    pos = next;
  }
  total += model.SeekTime(p.num_cylinders - 1 - pos);
  EXPECT_NEAR(total, p.worst_seek, 1e-9);
}

TEST(SeekModelTest, RuemmlerWilkesAnchorsAndMonotone) {
  const DiskParams p = DiskParams::Sigmod96();
  SeekModel model(p, SeekCurve::kRuemmlerWilkes);
  EXPECT_DOUBLE_EQ(model.SeekTime(0), 0.0);
  EXPECT_NEAR(model.SeekTime(1), p.min_seek, 1e-12);
  EXPECT_NEAR(model.SeekTime(p.num_cylinders - 1), p.worst_seek, 1e-12);
  double prev = 0.0;
  for (int d = 1; d < p.num_cylinders; d += 50) {
    const double t = model.SeekTime(d);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(SeekModelTest, ConcaveCurveMakesShortSeeksExpensive) {
  const DiskParams p = DiskParams::Sigmod96();
  SeekModel rw(p, SeekCurve::kRuemmlerWilkes);
  SeekModel lin(p, SeekCurve::kLinear);
  // 20 short seeks cost more under the concave curve than the linear one
  // — why Equation 1 needs the settle term to stay safe in practice.
  EXPECT_GT(20 * rw.SeekTime(50), 20 * lin.SeekTime(50));
}

TEST(CScanTest, OrderIsAscendingByCylinder) {
  const std::vector<int> cylinders = {500, 10, 300, 10, 1999};
  const auto order = CScanScheduler::Order(cylinders);
  ASSERT_EQ(order.size(), 5u);
  // Ascending; ties keep input order (stable).
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
  EXPECT_EQ(order[4], 4u);
}

TEST(CScanTest, EmptyRoundCostsNothing) {
  CScanScheduler sched(DiskParams::Sigmod96(), SeekCurve::kLinear);
  const RoundTiming t = sched.TimeRound({}, 64 * kKiB, nullptr);
  EXPECT_EQ(t.num_requests, 0);
  EXPECT_DOUBLE_EQ(t.Total(), 0.0);
}

TEST(CScanTest, WorstCaseRoundWithinEquation1Budget) {
  const DiskParams p = DiskParams::Sigmod96();
  CScanScheduler sched(p, SeekCurve::kLinear);
  const std::int64_t b = 128 * kKiB;
  const int q = 10;
  // Adversarial spread: q requests across the whole surface.
  std::vector<int> cylinders;
  for (int i = 0; i < q; ++i) {
    cylinders.push_back(i * (p.num_cylinders - 1) / (q - 1));
  }
  const RoundTiming t = sched.TimeRound(cylinders, b, nullptr);
  const double bound =
      q * (static_cast<double>(b) / p.transfer_rate + p.worst_rotational +
           p.settle_time) +
      2 * p.worst_seek;
  EXPECT_LE(t.Total(), bound + 1e-9);
  EXPECT_EQ(t.num_requests, q);
}

TEST(CScanTest, SampledRotationNeverExceedsWorstCase) {
  const DiskParams p = DiskParams::Sigmod96();
  CScanScheduler sched(p, SeekCurve::kLinear);
  Rng rng(42);
  const std::vector<int> cylinders = {5, 900, 1500};
  const RoundTiming worst = sched.TimeRound(cylinders, 64 * kKiB, nullptr);
  for (int i = 0; i < 20; ++i) {
    const RoundTiming sampled =
        sched.TimeRound(cylinders, 64 * kKiB, &rng);
    EXPECT_LE(sampled.Total(), worst.Total());
    EXPECT_EQ(sampled.seek_time, worst.seek_time);
    EXPECT_EQ(sampled.transfer_time, worst.transfer_time);
  }
}

TEST(SimDiskTest, ReadBackWhatWasWritten) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  Block data(512, 0xab);
  ASSERT_TRUE(disk.Write(3, data).ok());
  Result<Block> r = disk.Read(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  EXPECT_TRUE(disk.IsWritten(3));
}

TEST(SimDiskTest, UnwrittenBlocksReadAsZeros) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  Result<Block> r = disk.Read(100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Block(512, 0));
  EXPECT_FALSE(disk.IsWritten(100));
}

TEST(SimDiskTest, FailureRejectsIoAndRepairRestores) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  ASSERT_TRUE(disk.Write(0, Block(512, 1)).ok());
  disk.Fail();
  EXPECT_EQ(disk.Read(0).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(disk.Write(1, Block(512, 2)).code(),
            StatusCode::kFailedPrecondition);
  disk.Repair();
  ASSERT_TRUE(disk.Read(0).ok());
  EXPECT_EQ((*disk.Read(0))[0], 1);  // Failure does not erase data.
}

TEST(SimDiskTest, BoundsAndSizeChecks) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  EXPECT_EQ(disk.Write(-1, Block(512, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(disk.num_blocks(), Block(512, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(0, Block(100, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.Read(-5).status().code(), StatusCode::kInvalidArgument);
}

TEST(SimDiskTest, ReadViewIsZeroCopyAndNullForUnwritten) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  const Block data(512, 0xcd);
  ASSERT_TRUE(disk.Write(7, data).ok());
  Result<const Block*> view = disk.ReadView(7);
  ASSERT_TRUE(view.ok());
  ASSERT_NE(*view, nullptr);
  EXPECT_EQ(**view, data);
  // Unwritten blocks come back as nullptr (the XOR identity), not as an
  // allocated zero block.
  Result<const Block*> unwritten = disk.ReadView(8);
  ASSERT_TRUE(unwritten.ok());
  EXPECT_EQ(*unwritten, nullptr);
  // The same bounds and failure checks as Read.
  EXPECT_EQ(disk.ReadView(-1).status().code(),
            StatusCode::kInvalidArgument);
  disk.Fail();
  EXPECT_EQ(disk.ReadView(7).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SimDiskTest, ReadIntoFillsCallerBlock) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  const Block data(512, 0x42);
  ASSERT_TRUE(disk.Write(0, data).ok());
  Block dst;
  ASSERT_TRUE(disk.ReadInto(0, &dst).ok());
  EXPECT_EQ(dst, data);
  ASSERT_TRUE(disk.ReadInto(1, &dst).ok());  // unwritten -> zeros
  EXPECT_EQ(dst, Block(512, 0));
}

TEST(SimDiskTest, HighestWrittenBlockTracksWritesAndRebuild) {
  SimDisk disk(DiskParams::Sigmod96(), 512);
  EXPECT_EQ(disk.HighestWrittenBlock(), -1);
  ASSERT_TRUE(disk.Write(5, Block(512, 1)).ok());
  EXPECT_EQ(disk.HighestWrittenBlock(), 5);
  ASSERT_TRUE(disk.Write(100, Block(512, 2)).ok());
  EXPECT_EQ(disk.HighestWrittenBlock(), 100);
  // A lower write does not regress the high-water mark.
  ASSERT_TRUE(disk.Write(3, Block(512, 3)).ok());
  EXPECT_EQ(disk.HighestWrittenBlock(), 100);
  // A blank replacement disk starts over.
  disk.Fail();
  disk.StartRebuild();
  EXPECT_EQ(disk.HighestWrittenBlock(), -1);
  ASSERT_TRUE(disk.Write(2, Block(512, 4)).ok());
  EXPECT_EQ(disk.HighestWrittenBlock(), 2);
}

TEST(SimDiskTest, CylindersCoverDiskMonotonically) {
  SimDisk disk(DiskParams::Sigmod96(), 64 * kKiB);
  EXPECT_EQ(disk.CylinderOf(0), 0);
  int prev = 0;
  for (std::int64_t b = 0; b < disk.num_blocks();
       b += disk.num_blocks() / 100) {
    const int c = disk.CylinderOf(b);
    EXPECT_GE(c, prev);
    EXPECT_LT(c, DiskParams::Sigmod96().num_cylinders);
    prev = c;
  }
}

TEST(DiskArrayTest, SingleFailureModelEnforced) {
  DiskArray array(4, DiskParams::Sigmod96(), 512);
  ASSERT_TRUE(array.FailDisk(2).ok());
  EXPECT_EQ(array.failed_disk(), 2);
  EXPECT_TRUE(array.FailDisk(2).ok());  // Idempotent.
  EXPECT_EQ(array.FailDisk(1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(array.RepairDisk(2).ok());
  EXPECT_EQ(array.failed_disk(), -1);
  EXPECT_TRUE(array.FailDisk(1).ok());
}

TEST(DiskArrayTest, XorOfReconstructsMissingBlock) {
  DiskArray array(4, DiskParams::Sigmod96(), 8);
  const Block a = {1, 2, 3, 4, 5, 6, 7, 8};
  const Block b = {8, 7, 6, 5, 4, 3, 2, 1};
  Block parity(8, 0);
  for (int i = 0; i < 8; ++i) {
    parity[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)];
  }
  ASSERT_TRUE(array.Write({0, 0}, a).ok());
  ASSERT_TRUE(array.Write({1, 0}, b).ok());
  ASSERT_TRUE(array.Write({2, 0}, parity).ok());
  // Lose disk 0; a == b XOR parity.
  ASSERT_TRUE(array.FailDisk(0).ok());
  Result<Block> rec = array.XorOf({{1, 0}, {2, 0}});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, a);
}

TEST(DiskArrayTest, XorOfRejectsFailedSource) {
  DiskArray array(3, DiskParams::Sigmod96(), 8);
  ASSERT_TRUE(array.FailDisk(1).ok());
  EXPECT_FALSE(array.XorOf({{1, 0}}).ok());
  EXPECT_FALSE(array.XorOf({}).ok());
}

TEST(DiskArrayTest, ReadWriteRouteToCorrectDisk) {
  DiskArray array(3, DiskParams::Sigmod96(), 8);
  ASSERT_TRUE(array.Write({2, 5}, Block(8, 9)).ok());
  EXPECT_TRUE(array.disk(2).IsWritten(5));
  EXPECT_FALSE(array.disk(1).IsWritten(5));
  EXPECT_EQ(array.Read({3, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cmfs
