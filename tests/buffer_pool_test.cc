#include "core/buffer_pool.h"

#include <gtest/gtest.h>

#include "core/content.h"

namespace cmfs {
namespace {

TEST(BufferPoolTest, PutFindErase) {
  BufferPool pool(16);
  pool.Put(1, 0, 5, Block(16, 0xaa), false);
  BufferPool::Entry* entry = pool.Find(1, 0, 5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, Block(16, 0xaa));
  EXPECT_FALSE(entry->parity_pending);
  EXPECT_EQ(pool.Find(1, 0, 6), nullptr);
  EXPECT_EQ(pool.Find(2, 0, 5), nullptr);
  EXPECT_TRUE(pool.Erase(1, 0, 5));
  EXPECT_FALSE(pool.Erase(1, 0, 5));
  EXPECT_EQ(pool.resident_blocks(), 0);
}

TEST(BufferPoolTest, AccumulateXorsIntoZero) {
  BufferPool pool(4);
  pool.Accumulate(1, 0, 0, Block{1, 2, 3, 4});
  pool.Accumulate(1, 0, 0, Block{4, 3, 2, 1});
  BufferPool::Entry* entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, (Block{1 ^ 4, 2 ^ 3, 3 ^ 2, 4 ^ 1}));
}

TEST(BufferPoolTest, AccumulateOfGroupRecoversMissingBlock) {
  // parity ^ survivors == missing member, as the declustered degraded
  // read relies on.
  BufferPool pool(8);
  const Block a = PatternBlock(0, 1, 8);
  const Block b = PatternBlock(0, 2, 8);
  Block parity(8, 0);
  for (int i = 0; i < 8; ++i) {
    parity[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)];
  }
  pool.Accumulate(3, 0, 1, b);
  pool.Accumulate(3, 0, 1, parity);
  EXPECT_EQ(pool.Find(3, 0, 1)->data, a);
}

TEST(BufferPoolTest, HighWaterTracksPeak) {
  BufferPool pool(8);
  for (int i = 0; i < 5; ++i) pool.Put(1, 0, i, Block(8, 0), false);
  EXPECT_EQ(pool.high_water_blocks(), 5);
  pool.Erase(1, 0, 0);
  pool.Erase(1, 0, 1);
  EXPECT_EQ(pool.resident_blocks(), 3);
  EXPECT_EQ(pool.high_water_blocks(), 5);
}

TEST(BufferPoolTest, DropStreamRemovesOnlyThatStream) {
  BufferPool pool(8);
  pool.Put(1, 0, 0, Block(8, 0), false);
  pool.Put(1, 1, 7, Block(8, 0), false);
  pool.Put(2, 0, 0, Block(8, 0), false);
  pool.DropStream(1);
  EXPECT_EQ(pool.Find(1, 0, 0), nullptr);
  EXPECT_EQ(pool.Find(1, 1, 7), nullptr);
  EXPECT_NE(pool.Find(2, 0, 0), nullptr);
}

TEST(ContentTest, DeterministicAndDistinct) {
  EXPECT_EQ(PatternBlock(0, 5, 64), PatternBlock(0, 5, 64));
  EXPECT_NE(PatternBlock(0, 5, 64), PatternBlock(0, 6, 64));
  EXPECT_NE(PatternBlock(0, 5, 64), PatternBlock(1, 5, 64));
  EXPECT_EQ(PatternBlock(2, 9, 100).size(), 100u);
}

TEST(ContentTest, NotDegenerate) {
  // Blocks are not all-zero / all-equal bytes (would mask XOR bugs).
  const Block b = PatternBlock(0, 0, 64);
  bool varied = false;
  for (std::size_t i = 1; i < b.size(); ++i) {
    if (b[i] != b[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace cmfs
