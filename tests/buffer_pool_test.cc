#include "core/buffer_pool.h"

#include <gtest/gtest.h>

#include "core/content.h"

namespace cmfs {
namespace {

TEST(BufferPoolTest, PutFindErase) {
  BufferPool pool(16);
  pool.Put(1, 0, 5, Block(16, 0xaa), false);
  BufferPool::Entry* entry = pool.Find(1, 0, 5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, Block(16, 0xaa));
  EXPECT_FALSE(entry->parity_pending);
  EXPECT_EQ(pool.Find(1, 0, 6), nullptr);
  EXPECT_EQ(pool.Find(2, 0, 5), nullptr);
  EXPECT_TRUE(pool.Erase(1, 0, 5));
  EXPECT_FALSE(pool.Erase(1, 0, 5));
  EXPECT_EQ(pool.resident_blocks(), 0);
}

TEST(BufferPoolTest, AccumulateXorsIntoZero) {
  BufferPool pool(4);
  pool.Accumulate(1, 0, 0, Block{1, 2, 3, 4});
  pool.Accumulate(1, 0, 0, Block{4, 3, 2, 1});
  BufferPool::Entry* entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, (Block{1 ^ 4, 2 ^ 3, 3 ^ 2, 4 ^ 1}));
}

TEST(BufferPoolTest, AccumulateOfGroupRecoversMissingBlock) {
  // parity ^ survivors == missing member, as the declustered degraded
  // read relies on.
  BufferPool pool(8);
  const Block a = PatternBlock(0, 1, 8);
  const Block b = PatternBlock(0, 2, 8);
  Block parity(8, 0);
  for (int i = 0; i < 8; ++i) {
    parity[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)];
  }
  pool.Accumulate(3, 0, 1, b);
  pool.Accumulate(3, 0, 1, parity);
  EXPECT_EQ(pool.Find(3, 0, 1)->data, a);
}

TEST(BufferPoolTest, HighWaterTracksPeak) {
  BufferPool pool(8);
  for (int i = 0; i < 5; ++i) pool.Put(1, 0, i, Block(8, 0), false);
  EXPECT_EQ(pool.high_water_blocks(), 5);
  pool.Erase(1, 0, 0);
  pool.Erase(1, 0, 1);
  EXPECT_EQ(pool.resident_blocks(), 3);
  EXPECT_EQ(pool.high_water_blocks(), 5);
}

TEST(BufferPoolTest, DropStreamRemovesOnlyThatStream) {
  BufferPool pool(8);
  pool.Put(1, 0, 0, Block(8, 0), false);
  pool.Put(1, 1, 7, Block(8, 0), false);
  pool.Put(2, 0, 0, Block(8, 0), false);
  pool.DropStream(1);
  EXPECT_EQ(pool.Find(1, 0, 0), nullptr);
  EXPECT_EQ(pool.Find(1, 1, 7), nullptr);
  EXPECT_NE(pool.Find(2, 0, 0), nullptr);
}

TEST(BufferPoolTest, PointerPutNullptrZeroFillsAndReplaces) {
  BufferPool pool(4);
  // nullptr stands for a never-written block: the entry becomes zeros.
  pool.Put(1, 0, 0, nullptr, true);
  BufferPool::Entry* entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, Block(4, 0));
  EXPECT_TRUE(entry->parity_pending);
  // A later pointer Put replaces data and flags in place.
  const Block data{9, 8, 7, 6};
  pool.Put(1, 0, 0, &data, false);
  entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, data);
  EXPECT_FALSE(entry->parity_pending);
  EXPECT_EQ(pool.resident_blocks(), 1);
}

TEST(BufferPoolTest, AccumulateNullptrOnlyEnsuresEntry) {
  BufferPool pool(4);
  pool.Accumulate(1, 0, 0, nullptr);
  ASSERT_NE(pool.Find(1, 0, 0), nullptr);
  EXPECT_EQ(pool.Find(1, 0, 0)->data, Block(4, 0));
  // XOR-ing a null contribution is the identity.
  pool.Accumulate(1, 0, 0, Block{1, 2, 3, 4});
  pool.Accumulate(1, 0, 0, nullptr);
  EXPECT_EQ(pool.Find(1, 0, 0)->data, (Block{1, 2, 3, 4}));
}

TEST(BufferPoolTest, DropStreamRegressionOverHashedMap) {
  // The hashed container scatters a stream's keys instead of keeping
  // them contiguous; DropStream must still remove exactly that stream.
  BufferPool pool(8);
  const Block data(8, 0x5a);
  for (StreamId stream = 0; stream < 6; ++stream) {
    for (int space = 0; space < 3; ++space) {
      for (std::int64_t index : {0, 1, 63, 64, 1000}) {
        pool.Put(stream, space, index, &data, false);
      }
    }
  }
  EXPECT_EQ(pool.resident_blocks(), 6 * 3 * 5);
  pool.DropStream(3);
  EXPECT_EQ(pool.resident_blocks(), 5 * 3 * 5);
  for (StreamId stream = 0; stream < 6; ++stream) {
    for (int space = 0; space < 3; ++space) {
      for (std::int64_t index : {0, 1, 63, 64, 1000}) {
        if (stream == 3) {
          EXPECT_EQ(pool.Find(stream, space, index), nullptr);
        } else {
          EXPECT_NE(pool.Find(stream, space, index), nullptr);
        }
      }
    }
  }
  // Dropping an absent stream is a no-op.
  pool.DropStream(3);
  pool.DropStream(99);
  EXPECT_EQ(pool.resident_blocks(), 5 * 3 * 5);
}

TEST(ContentTest, DeterministicAndDistinct) {
  EXPECT_EQ(PatternBlock(0, 5, 64), PatternBlock(0, 5, 64));
  EXPECT_NE(PatternBlock(0, 5, 64), PatternBlock(0, 6, 64));
  EXPECT_NE(PatternBlock(0, 5, 64), PatternBlock(1, 5, 64));
  EXPECT_EQ(PatternBlock(2, 9, 100).size(), 100u);
}

TEST(ContentTest, PatternFillReusesScratchAndMatchesPatternBlock) {
  Block scratch(17, 0xff);  // wrong size and dirty: must be overwritten
  PatternFill(2, 9, 100, &scratch);
  EXPECT_EQ(scratch, PatternBlock(2, 9, 100));
  PatternFill(0, 5, 64, &scratch);
  EXPECT_EQ(scratch, PatternBlock(0, 5, 64));
  // Sizes that are not a multiple of 8 exercise the word-tail path.
  for (std::int64_t size : {1, 7, 8, 9, 63, 65}) {
    PatternFill(1, 3, size, &scratch);
    EXPECT_EQ(scratch, PatternBlock(1, 3, size)) << size;
  }
}

TEST(ContentTest, NotDegenerate) {
  // Blocks are not all-zero / all-equal bytes (would mask XOR bugs).
  const Block b = PatternBlock(0, 0, 64);
  bool varied = false;
  for (std::size_t i = 1; i < b.size(); ++i) {
    if (b[i] != b[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace cmfs
