#include "core/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/content.h"
#include "obs/export.h"

namespace cmfs {
namespace {

TEST(BufferPoolTest, PutFindErase) {
  BufferPool pool(16);
  pool.Put(1, 0, 5, Block(16, 0xaa), false);
  BufferPool::Entry* entry = pool.Find(1, 0, 5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, Block(16, 0xaa));
  EXPECT_FALSE(entry->parity_pending);
  EXPECT_EQ(pool.Find(1, 0, 6), nullptr);
  EXPECT_EQ(pool.Find(2, 0, 5), nullptr);
  EXPECT_TRUE(pool.Erase(1, 0, 5));
  EXPECT_FALSE(pool.Erase(1, 0, 5));
  EXPECT_EQ(pool.resident_blocks(), 0);
}

TEST(BufferPoolTest, AccumulateXorsIntoZero) {
  BufferPool pool(4);
  pool.Accumulate(1, 0, 0, Block{1, 2, 3, 4});
  pool.Accumulate(1, 0, 0, Block{4, 3, 2, 1});
  BufferPool::Entry* entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, (Block{1 ^ 4, 2 ^ 3, 3 ^ 2, 4 ^ 1}));
}

TEST(BufferPoolTest, AccumulateOfGroupRecoversMissingBlock) {
  // parity ^ survivors == missing member, as the declustered degraded
  // read relies on.
  BufferPool pool(8);
  const Block a = PatternBlock(0, 1, 8);
  const Block b = PatternBlock(0, 2, 8);
  Block parity(8, 0);
  for (int i = 0; i < 8; ++i) {
    parity[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)];
  }
  pool.Accumulate(3, 0, 1, b);
  pool.Accumulate(3, 0, 1, parity);
  EXPECT_EQ(pool.Find(3, 0, 1)->data, a);
}

TEST(BufferPoolTest, HighWaterTracksPeak) {
  BufferPool pool(8);
  for (int i = 0; i < 5; ++i) pool.Put(1, 0, i, Block(8, 0), false);
  EXPECT_EQ(pool.high_water_blocks(), 5);
  pool.Erase(1, 0, 0);
  pool.Erase(1, 0, 1);
  EXPECT_EQ(pool.resident_blocks(), 3);
  EXPECT_EQ(pool.high_water_blocks(), 5);
}

TEST(BufferPoolTest, DropStreamRemovesOnlyThatStream) {
  BufferPool pool(8);
  pool.Put(1, 0, 0, Block(8, 0), false);
  pool.Put(1, 1, 7, Block(8, 0), false);
  pool.Put(2, 0, 0, Block(8, 0), false);
  pool.DropStream(1);
  EXPECT_EQ(pool.Find(1, 0, 0), nullptr);
  EXPECT_EQ(pool.Find(1, 1, 7), nullptr);
  EXPECT_NE(pool.Find(2, 0, 0), nullptr);
}

TEST(BufferPoolTest, PointerPutNullptrZeroFillsAndReplaces) {
  BufferPool pool(4);
  // nullptr stands for a never-written block: the entry becomes zeros.
  pool.Put(1, 0, 0, nullptr, true);
  BufferPool::Entry* entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, Block(4, 0));
  EXPECT_TRUE(entry->parity_pending);
  // A later pointer Put replaces data and flags in place.
  const Block data{9, 8, 7, 6};
  pool.Put(1, 0, 0, &data, false);
  entry = pool.Find(1, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data, data);
  EXPECT_FALSE(entry->parity_pending);
  EXPECT_EQ(pool.resident_blocks(), 1);
}

TEST(BufferPoolTest, AccumulateNullptrOnlyEnsuresEntry) {
  BufferPool pool(4);
  pool.Accumulate(1, 0, 0, nullptr);
  ASSERT_NE(pool.Find(1, 0, 0), nullptr);
  EXPECT_EQ(pool.Find(1, 0, 0)->data, Block(4, 0));
  // XOR-ing a null contribution is the identity.
  pool.Accumulate(1, 0, 0, Block{1, 2, 3, 4});
  pool.Accumulate(1, 0, 0, nullptr);
  EXPECT_EQ(pool.Find(1, 0, 0)->data, (Block{1, 2, 3, 4}));
}

TEST(BufferPoolTest, DropStreamRegressionOverHashedMap) {
  // The hashed container scatters a stream's keys instead of keeping
  // them contiguous; DropStream must still remove exactly that stream.
  BufferPool pool(8);
  const Block data(8, 0x5a);
  for (StreamId stream = 0; stream < 6; ++stream) {
    for (int space = 0; space < 3; ++space) {
      for (std::int64_t index : {0, 1, 63, 64, 1000}) {
        pool.Put(stream, space, index, &data, false);
      }
    }
  }
  EXPECT_EQ(pool.resident_blocks(), 6 * 3 * 5);
  pool.DropStream(3);
  EXPECT_EQ(pool.resident_blocks(), 5 * 3 * 5);
  for (StreamId stream = 0; stream < 6; ++stream) {
    for (int space = 0; space < 3; ++space) {
      for (std::int64_t index : {0, 1, 63, 64, 1000}) {
        if (stream == 3) {
          EXPECT_EQ(pool.Find(stream, space, index), nullptr);
        } else {
          EXPECT_NE(pool.Find(stream, space, index), nullptr);
        }
      }
    }
  }
  // Dropping an absent stream is a no-op.
  pool.DropStream(3);
  pool.DropStream(99);
  EXPECT_EQ(pool.resident_blocks(), 5 * 3 * 5);
}

// --- Sharded pool: staged merge + sequential replay ---------------------

std::string RegistryJson(const MetricsRegistry& registry) {
  JsonWriter json;
  json.BeginObject();
  AppendRegistryJson(registry, &json);
  json.EndObject();
  return json.TakeString();
}

TEST(BufferPoolShardTest, ShardOfIsAPureKeyProperty) {
  // Shard routing must depend on the key alone — two pools with the
  // same shard count agree on every key, and a single-shard pool (the
  // classic configuration) routes everything to shard 0.
  BufferPool pool(16, 8);
  BufferPool other(16, 8);
  std::vector<int> hits(8, 0);
  for (std::int64_t index = 0; index < 256; ++index) {
    const int shard = pool.ShardOf(3, 1, index);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, pool.num_shards());
    EXPECT_EQ(shard, other.ShardOf(3, 1, index));
    ++hits[static_cast<std::size_t>(shard)];
  }
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_GT(hits[static_cast<std::size_t>(shard)], 0) << shard;
  }
  BufferPool single(16);
  EXPECT_EQ(single.num_shards(), 1);
  EXPECT_EQ(single.ShardOf(3, 1, 77), 0);
}

TEST(BufferPoolShardTest, StagedAdoptReplayMatchesSequential) {
  // The staged path (shard-scoped mutation now, global bookkeeping
  // replayed later in the same order) must be observationally identical
  // to the sequential PutAdopt path: same entries, same resident and
  // high-water counts, same occupancy-histogram sample sequence.
  MetricsRegistry seq_registry;
  MetricsRegistry staged_registry;
  BufferPool seq(8, 4);
  BufferPool staged(8, 4);
  seq.AttachMetrics(&seq_registry);
  staged.AttachMetrics(&staged_registry);
  struct Op {
    StreamId stream;
    int space;
    std::int64_t index;
  };
  std::vector<Op> ops;
  for (std::int64_t index = 0; index < 24; ++index) {
    ops.push_back({static_cast<StreamId>(index % 3), 0, index});
  }
  // Duplicates exercise the replace path (adopt releases the old block).
  ops.push_back({0, 0, 0});
  ops.push_back({2, 0, 23});
  const auto fill = [](std::uint8_t* block, const Op& op) {
    const Block bytes = PatternBlock(op.space, op.index, 8);
    std::memcpy(block, bytes.data(), bytes.size());
  };
  for (const Op& op : ops) {
    const int shard = seq.ShardOf(op.stream, op.space, op.index);
    std::uint8_t* block = seq.arena(shard)->Allocate();
    fill(block, op);
    seq.PutAdopt(op.stream, op.space, op.index, block, false);
  }
  std::vector<bool> inserted;
  for (const Op& op : ops) {
    const int shard = staged.ShardOf(op.stream, op.space, op.index);
    std::uint8_t* block = staged.arena(shard)->Allocate();
    fill(block, op);
    inserted.push_back(staged.StagedPutAdopt(shard, op.stream, op.space,
                                             op.index, block, false));
  }
  for (const bool fresh : inserted) staged.ReplayStagedInsert(fresh);
  EXPECT_EQ(staged.resident_blocks(), seq.resident_blocks());
  EXPECT_EQ(staged.high_water_blocks(), seq.high_water_blocks());
  EXPECT_EQ(staged.CheckShardGauges(), staged.resident_blocks());
  EXPECT_EQ(RegistryJson(staged_registry), RegistryJson(seq_registry));
  for (const Op& op : ops) {
    BufferPool::Entry* a = seq.Find(op.stream, op.space, op.index);
    BufferPool::Entry* b = staged.Find(op.stream, op.space, op.index);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(0, std::memcmp(a->data.data(), b->data.data(), 8));
  }
}

TEST(BufferPoolShardTest, StagedAccumulateReplayMatchesSequential) {
  MetricsRegistry seq_registry;
  MetricsRegistry staged_registry;
  BufferPool seq(8, 4);
  BufferPool staged(8, 4);
  seq.AttachMetrics(&seq_registry);
  staged.AttachMetrics(&staged_registry);
  const Block partial_a = PatternBlock(0, 1, 8);
  const Block partial_b = PatternBlock(0, 2, 8);
  std::vector<bool> inserted;
  for (std::int64_t index = 0; index < 16; ++index) {
    seq.AccumulateXor(5, 0, index, partial_a.data());
    seq.AccumulateXor(5, 0, index, partial_b.data());  // existing entry
    const int shard = staged.ShardOf(5, 0, index);
    inserted.push_back(
        staged.StagedAccumulateXor(shard, 5, 0, index, partial_a.data()));
    inserted.push_back(
        staged.StagedAccumulateXor(shard, 5, 0, index, partial_b.data()));
  }
  for (const bool fresh : inserted) staged.ReplayStagedAccumulate(fresh);
  EXPECT_EQ(staged.resident_blocks(), seq.resident_blocks());
  EXPECT_EQ(staged.CheckShardGauges(), staged.resident_blocks());
  EXPECT_EQ(RegistryJson(staged_registry), RegistryJson(seq_registry));
  for (std::int64_t index = 0; index < 16; ++index) {
    EXPECT_EQ(0, std::memcmp(seq.Find(5, 0, index)->data.data(),
                             staged.Find(5, 0, index)->data.data(), 8));
  }
}

TEST(BufferPoolShardTest, PinAccountingReconcilesPerShard) {
  BufferPool pool(64, 4);
  MetricsRegistry registry;
  pool.AttachMetrics(&registry);
  // Pins land on specific shards and fold to the deterministic total;
  // the registry gauge mirrors every change.
  pool.PinOne(0);
  pool.PinOne(0);
  pool.PinOne(3);
  EXPECT_EQ(pool.pinned_blocks(), 3);
  EXPECT_EQ(registry.gauge("buffer.pinned_blocks")->value(), 3.0);
  EXPECT_EQ(pool.CheckPinnedGauges(3), 3);
  pool.UnpinOne(0);
  pool.UnpinOne(3);
  EXPECT_EQ(pool.pinned_blocks(), 1);
  EXPECT_EQ(registry.gauge("buffer.pinned_blocks")->value(), 1.0);
  EXPECT_EQ(pool.CheckPinnedGauges(1), 1);
  pool.UnpinOne(0);
  EXPECT_EQ(pool.CheckPinnedGauges(0), 0);
}

TEST(BufferPoolShardTest, PinsAreIndependentOfOccupancy) {
  // Pinned blocks live outside the entry maps; CheckShardGauges (entry
  // occupancy) and CheckPinnedGauges (cache pins) reconcile separately.
  BufferPool pool(64, 2);
  pool.PinOne(1);
  pool.Put(0, 0, 0, PatternBlock(0, 0, 64), false);
  EXPECT_EQ(pool.resident_blocks(), 1);
  EXPECT_EQ(pool.pinned_blocks(), 1);
  EXPECT_EQ(pool.CheckShardGauges(), 1);
  EXPECT_EQ(pool.CheckPinnedGauges(1), 1);
  pool.UnpinOne(1);
  EXPECT_EQ(pool.CheckShardGauges(), 1);
  EXPECT_EQ(pool.CheckPinnedGauges(0), 0);
}

TEST(BufferPoolShardTest, ConcurrentStagedInsertsAcrossShardsAreRaceFree) {
  // Regression for the occupancy-gauge race: the pre-sharding pool
  // bumped one shared occupancy gauge outside any lock on the adopt
  // path, so parallel lane adoption could lose updates. The gauge is
  // now a per-shard atomic folded (and CHECKed) at commit. One thread
  // per shard hammers staged adopts concurrently; under the
  // tsan-parallel label ThreadSanitizer proves the path race-free, and
  // the folded gauges must equal the replayed deterministic count.
  constexpr int kShards = 4;
  constexpr int kKeysPerShard = 64;
  BufferPool pool(16, kShards);
  std::vector<std::vector<std::int64_t>> keys(kShards);
  bool done = false;
  for (std::int64_t index = 0; !done; ++index) {
    const int shard = pool.ShardOf(9, 0, index);
    if (keys[static_cast<std::size_t>(shard)].size() < kKeysPerShard) {
      keys[static_cast<std::size_t>(shard)].push_back(index);
    }
    done = true;
    for (const auto& bucket : keys) {
      if (bucket.size() < kKeysPerShard) done = false;
    }
  }
  std::vector<std::vector<bool>> inserted(kShards);
  std::vector<std::thread> threads;
  for (int shard = 0; shard < kShards; ++shard) {
    threads.emplace_back([&pool, &keys, &inserted, shard] {
      for (const std::int64_t index :
           keys[static_cast<std::size_t>(shard)]) {
        std::uint8_t* block = pool.arena(shard)->Allocate();
        std::memset(block, shard + 1, 16);
        inserted[static_cast<std::size_t>(shard)].push_back(
            pool.StagedPutAdopt(shard, 9, 0, index, block, false));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& bucket : inserted) {
    for (const bool fresh : bucket) pool.ReplayStagedInsert(fresh);
  }
  EXPECT_EQ(pool.resident_blocks(), kShards * kKeysPerShard);
  EXPECT_EQ(pool.CheckShardGauges(), kShards * kKeysPerShard);
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(pool.shard_resident_blocks(shard), kKeysPerShard) << shard;
  }
}

TEST(ContentTest, DeterministicAndDistinct) {
  EXPECT_EQ(PatternBlock(0, 5, 64), PatternBlock(0, 5, 64));
  EXPECT_NE(PatternBlock(0, 5, 64), PatternBlock(0, 6, 64));
  EXPECT_NE(PatternBlock(0, 5, 64), PatternBlock(1, 5, 64));
  EXPECT_EQ(PatternBlock(2, 9, 100).size(), 100u);
}

TEST(ContentTest, PatternFillReusesScratchAndMatchesPatternBlock) {
  Block scratch(17, 0xff);  // wrong size and dirty: must be overwritten
  PatternFill(2, 9, 100, &scratch);
  EXPECT_EQ(scratch, PatternBlock(2, 9, 100));
  PatternFill(0, 5, 64, &scratch);
  EXPECT_EQ(scratch, PatternBlock(0, 5, 64));
  // Sizes that are not a multiple of 8 exercise the word-tail path.
  for (std::int64_t size : {1, 7, 8, 9, 63, 65}) {
    PatternFill(1, 3, size, &scratch);
    EXPECT_EQ(scratch, PatternBlock(1, 3, size)) << size;
  }
}

TEST(ContentTest, NotDegenerate) {
  // Blocks are not all-zero / all-equal bytes (would mask XOR bugs).
  const Block b = PatternBlock(0, 0, 64);
  bool varied = false;
  for (std::size_t i = 1; i < b.size(); ++i) {
    if (b[i] != b[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace cmfs
