#include "core/ingest.h"

#include <gtest/gtest.h>

#include "bibd/design_factory.h"
#include "core/content.h"
#include "core/controller_factory.h"
#include "core/server.h"
#include "layout/declustered_layout.h"
#include "layout/parity_disk_layout.h"

namespace cmfs {
namespace {

constexpr std::int64_t kBlockSize = 16;

DeclusteredLayout MakeDeclustered(int d, int p, std::int64_t capacity) {
  Result<FactoryDesign> design = BuildDesign(d, p);
  CMFS_CHECK(design.ok());
  Result<Pgt> pgt = Pgt::FromDesign(design->design);
  CMFS_CHECK(pgt.ok());
  return DeclusteredLayout(*std::move(pgt), capacity);
}

TEST(IngestTest, RecordedClipIsParityConsistentAndPlayable) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 700);
  DiskArray array(7, DiskParams::Sigmod96(), kBlockSize);
  IngestController ingest(&layout, &array, /*max_recordings_per_disk=*/2);

  ASSERT_TRUE(ingest.TryAdmit(0, 0, 0, 42));
  ASSERT_TRUE(ingest.TryAdmit(1, 0, 100, 42));
  while (ingest.num_active() > 0) {
    ASSERT_TRUE(ingest.Round().ok());
  }
  EXPECT_EQ(ingest.stats().blocks_written, 84);
  EXPECT_EQ(ingest.stats().completed_recordings, 2);

  // Parity is consistent everywhere the recordings touched.
  EXPECT_TRUE(VerifyParity(layout, array, 142, nullptr).ok());

  // The recorded content reconstructs after a failure, bit-exact.
  ASSERT_TRUE(array.FailDisk(2).ok());
  for (std::int64_t i = 0; i < 42; ++i) {
    Result<Block> block = ReadDataBlock(layout, array, 0, i);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(*block, PatternBlock(0, i, kBlockSize));
  }
}

TEST(IngestTest, AdmissionCapsRecordingsPerDisk) {
  const DeclusteredLayout layout = MakeDeclustered(7, 3, 700);
  DiskArray array(7, DiskParams::Sigmod96(), kBlockSize);
  IngestController ingest(&layout, &array, /*max_recordings_per_disk=*/1);
  EXPECT_TRUE(ingest.TryAdmit(0, 0, 0, 20));   // disk 0
  EXPECT_FALSE(ingest.TryAdmit(1, 0, 7, 20));  // disk 0 again
  EXPECT_TRUE(ingest.TryAdmit(2, 0, 1, 20));   // disk 1
  // Once the first recording moves on, disk 0 frees up.
  ASSERT_TRUE(ingest.Round().ok());
  EXPECT_TRUE(ingest.TryAdmit(3, 0, 0, 20));
}

TEST(IngestTest, WriteOpsBoundedAndSpreadByDeclustering) {
  const DeclusteredLayout layout = MakeDeclustered(9, 3, 900);
  DiskArray array(9, DiskParams::Sigmod96(), kBlockSize);
  IngestController ingest(&layout, &array, /*max_recordings_per_disk=*/1);
  int admitted = 0;
  for (int i = 0; i < 9; ++i) {
    if (ingest.TryAdmit(i, 0, i, 60)) ++admitted;
  }
  ASSERT_EQ(admitted, 9);
  for (int round = 0; round < 60; ++round) {
    ASSERT_TRUE(ingest.Round().ok());
  }
  // 1 recording per disk: 2 data ops plus however many parity updates
  // land together; the rotating-parity layout keeps that far below the
  // all-on-one-disk worst case of 2 + 2*9 = 20 ops.
  EXPECT_LE(ingest.stats().max_disk_round_ops, 12);
}

TEST(IngestTest, RecordingWhilePlaybackStaysClean) {
  // Serve playback from one region while recording into another; the
  // parity of both regions stays consistent and the played blocks are
  // bit-exact even after a failure.
  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = 9;
  options.parity_group = 3;
  options.q = 8;
  options.f = 2;
  options.capacity_blocks = 900;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());
  DiskArray array(9, DiskParams::Sigmod96(), kBlockSize);
  for (std::int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(WriteDataBlock(*setup->layout, array, 0, i,
                               PatternBlock(0, i, kBlockSize))
                    .ok());
  }
  ServerConfig server_config;
  server_config.block_size = kBlockSize;
  Server server(&array, setup->controller.get(), server_config);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.TryAdmit(i, 0, 10 * i, 100));
  }
  IngestController ingest(setup->layout.get(), &array, 1);
  ASSERT_TRUE(ingest.TryAdmit(100, 0, 400, 80));
  ASSERT_TRUE(ingest.TryAdmit(101, 0, 401, 80));

  for (int round = 0; round < 120; ++round) {
    if (round == 30) {
      ASSERT_TRUE(server.FailDisk(6).ok());
    }
    if (round == 60) {
      ASSERT_TRUE(array.RepairDisk(6).ok());
    }
    // Recording pauses while a disk is down (no parity home to update
    // safely); it resumes after repair.
    if (array.failed_disk() < 0 && ingest.num_active() > 0) {
      ASSERT_TRUE(ingest.Round().ok());
    }
    ASSERT_TRUE(server.RunRound().ok()) << round;
  }
  EXPECT_EQ(server.metrics().hiccups, 0);
  EXPECT_GT(ingest.stats().blocks_written, 0);
  EXPECT_TRUE(VerifyParity(*setup->layout, array, 600, nullptr).ok());
}

TEST(IngestTest, ClusteredLayoutIngestWorksToo) {
  ParityDiskLayout layout(8, 4, 240);
  DiskArray array(8, DiskParams::Sigmod96(), kBlockSize);
  IngestController ingest(&layout, &array, 2);
  ASSERT_TRUE(ingest.TryAdmit(0, 0, 0, 60));
  while (ingest.num_active() > 0) {
    ASSERT_TRUE(ingest.Round().ok());
  }
  EXPECT_TRUE(VerifyParity(layout, array, 60, nullptr).ok());
}

}  // namespace
}  // namespace cmfs
