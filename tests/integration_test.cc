#include <gtest/gtest.h>

#include "analysis/capacity.h"
#include "analysis/continuity.h"
#include "core/content.h"
#include "core/controller_factory.h"
#include "core/server.h"
#include "layout/layout.h"
#include "media/catalog.h"
#include "sim/failure_drill.h"
#include "util/units.h"

// Cross-module integration scenarios: catalog -> layout -> server with
// live arrivals, failure and repair; plus the factory surface.

namespace cmfs {
namespace {

TEST(ControllerFactoryTest, BuildsEveryScheme) {
  for (Scheme scheme :
       {Scheme::kDeclustered, Scheme::kDynamic, Scheme::kPrefetchParityDisk,
        Scheme::kPrefetchFlat, Scheme::kStreamingRaid,
        Scheme::kNonClustered}) {
    SetupOptions options;
    options.scheme = scheme;
    options.num_disks = 8;
    options.parity_group = 4;
    options.q = 6;
    options.f = 1;
    options.capacity_blocks = 240;
    if (scheme == Scheme::kPrefetchFlat) {
      options.num_disks = 9;  // (p-1) | d for exact class accounting.
    }
    Result<ServerSetup> setup = MakeSetup(options);
    ASSERT_TRUE(setup.ok()) << SchemeName(scheme);
    EXPECT_EQ(setup->controller->scheme(), scheme);
    EXPECT_EQ(setup->controller->q(), 6);
    EXPECT_EQ(&setup->controller->layout(), setup->layout.get());
  }
}

TEST(ControllerFactoryTest, RejectsBadConfigs) {
  SetupOptions options;
  options.scheme = Scheme::kStreamingRaid;
  options.num_disks = 10;
  options.parity_group = 4;  // 4 does not divide 10.
  options.q = 4;
  options.capacity_blocks = 100;
  EXPECT_FALSE(MakeSetup(options).ok());
  options.scheme = Scheme::kDynamic;
  options.ideal_pgt = true;
  options.ideal_rows = 3;
  EXPECT_FALSE(MakeSetup(options).ok());
  options.scheme = Scheme::kDeclustered;
  options.parity_group = 40;
  EXPECT_FALSE(MakeSetup(options).ok());
}

TEST(IntegrationTest, CatalogDrivenVodScenarioSurvivesFailureAndRepair) {
  // A small VOD service: 12 clips, staggered client arrivals, a disk
  // failure mid-service, a repair, and more clients after it.
  const int d = 9;
  const int p = 3;
  const std::int64_t block_size = 32;

  Catalog catalog;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        catalog.AddClip({i, /*length_blocks=*/18 + 2 * (i % 3)}).ok());
  }
  const auto extents = catalog.Concatenate(1);

  SetupOptions options;
  options.scheme = Scheme::kDeclustered;
  options.num_disks = d;
  options.parity_group = p;
  options.q = 8;
  options.f = 2;
  options.capacity_blocks = catalog.total_blocks() + d;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());

  DiskArray array(d, DiskParams::Sigmod96(), block_size);
  for (const ClipExtent& e : extents) {
    for (std::int64_t i = 0; i < e.length_blocks; ++i) {
      ASSERT_TRUE(WriteDataBlock(*setup->layout, array, e.space,
                                 e.start_block + i,
                                 PatternBlock(e.space, e.start_block + i,
                                              block_size))
                      .ok());
    }
  }
  std::int64_t groups = 0;
  ASSERT_TRUE(
      VerifyParity(*setup->layout, array, catalog.total_blocks(), &groups)
          .ok());
  EXPECT_GT(groups, 0);

  ServerConfig server_config;
  server_config.block_size = block_size;
  Server server(&array, setup->controller.get(), server_config);

  // Clients arrive over time; a disk dies at round 8; it is repaired
  // (and its content reconstructed) at round 30.
  int next_client = 0;
  int admitted = 0;
  for (int round = 0; round < 90; ++round) {
    if (round % 3 == 0 && next_client < 12) {
      const ClipExtent& e = extents[static_cast<std::size_t>(next_client)];
      if (server.TryAdmit(next_client, e.space, e.start_block,
                          e.length_blocks)) {
        ++admitted;
      }
      ++next_client;
    }
    if (round == 8) {
      ASSERT_TRUE(server.FailDisk(4).ok());
    }
    if (round == 30) {
      // Reconstruct disk 4's content from parity, then bring it back.
      ASSERT_TRUE(array.RepairDisk(4).ok());
      for (const ClipExtent& e : extents) {
        for (std::int64_t i = 0; i < e.length_blocks; ++i) {
          const BlockAddress addr =
              setup->layout->DataAddress(e.space, e.start_block + i);
          if (addr.disk != 4) continue;
          Result<Block> block =
              ReadDataBlock(*setup->layout, array, e.space,
                            e.start_block + i);
          ASSERT_TRUE(block.ok());
          ASSERT_TRUE(array.Write(addr, *block).ok());
        }
      }
    }
    ASSERT_TRUE(server.RunRound().ok()) << "round " << round;
  }
  const ServerMetrics& m = server.metrics();
  EXPECT_GT(admitted, 6);
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_EQ(m.completed_streams, admitted);
  EXPECT_GT(m.recovery_reads, 0);
}

TEST(IntegrationTest, AnalysisParametersDriveWorkingServer) {
  // Take (b, q, f) straight from the §7 model at paper scale, shrink the
  // block size for the byte-level simulation, and verify the admission
  // limits it prescribes actually run without violations.
  CapacityConfig config;
  config.disk = DiskParams::Sigmod96();
  config.server = ServerParams::Sigmod96(256 * kMiB);
  config.server.num_disks = 8;
  config.parity_group = 4;
  config.rows_override = 2.0;
  Result<CapacityResult> cap =
      ComputeCapacity(Scheme::kPrefetchParityDisk, config);
  ASSERT_TRUE(cap.ok());
  ASSERT_GT(cap->q, 0);

  DrillConfig drill;
  drill.scheme = Scheme::kPrefetchParityDisk;
  drill.num_disks = 8;
  drill.parity_group = 4;
  drill.q = cap->q;
  drill.num_streams = cap->total_clips;  // Saturate.
  drill.stream_blocks = 36;
  drill.fail_round = 12;
  drill.fail_disk = 2;
  drill.total_rounds = 100;
  Result<DrillResult> result = RunFailureDrill(drill);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.hiccups, 0);
  EXPECT_LE(result->metrics.max_disk_window_reads, cap->q);
}

TEST(IntegrationTest, Equation1HoldsEmpiricallyAtFullLoad) {
  // Admit exactly q streams per disk at the analytic block size and time
  // every round with the C-SCAN model: the worst round must fit b / r_p.
  const DiskParams disk = DiskParams::Sigmod96();
  const double rp = MbpsToBytesPerSec(1.5);
  const int q = 8;
  const std::int64_t b = MinBlockSizeForClips(disk, rp, q);
  ASSERT_GT(b, 0);

  SetupOptions options;
  options.scheme = Scheme::kPrefetchParityDisk;
  options.num_disks = 6;
  options.parity_group = 3;
  options.q = q;
  options.capacity_blocks = 2000;
  Result<ServerSetup> setup = MakeSetup(options);
  ASSERT_TRUE(setup.ok());

  DiskArray array(6, disk, b);
  for (std::int64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(WriteDataBlock(*setup->layout, array, 0, i,
                               PatternBlock(0, i, b))
                    .ok());
  }
  ServerConfig server_config;
  server_config.block_size = b;
  server_config.time_rounds = true;
  Server server(&array, setup->controller.get(), server_config);
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    if (server.TryAdmit(i, 0, (i % 10) * 2, 40)) ++admitted;
  }
  // Group-aligned starts land on even data-disk indices only (span 2 on
  // 4 data disks), so two start cohorts of q streams each form; as they
  // advance, all four data disks carry q reads per round.
  EXPECT_EQ(admitted, q * 2);
  ASSERT_TRUE(server.RunRounds(50).ok());
  EXPECT_LE(server.metrics().max_round_time, RoundLength(rp, b));
  // The bound is tight-ish: the busiest round uses most of it.
  EXPECT_GT(server.metrics().max_round_time, 0.5 * RoundLength(rp, b));
}

}  // namespace
}  // namespace cmfs
