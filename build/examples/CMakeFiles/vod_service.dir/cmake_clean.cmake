file(REMOVE_RECURSE
  "CMakeFiles/vod_service.dir/vod_service.cpp.o"
  "CMakeFiles/vod_service.dir/vod_service.cpp.o.d"
  "vod_service"
  "vod_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
