file(REMOVE_RECURSE
  "CMakeFiles/operations_tour.dir/operations_tour.cpp.o"
  "CMakeFiles/operations_tour.dir/operations_tour.cpp.o.d"
  "operations_tour"
  "operations_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operations_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
