# Empty dependencies file for operations_tour.
# This may be replaced when dependencies are built.
