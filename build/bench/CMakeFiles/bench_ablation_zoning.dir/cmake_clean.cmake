file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zoning.dir/bench_ablation_zoning.cc.o"
  "CMakeFiles/bench_ablation_zoning.dir/bench_ablation_zoning.cc.o.d"
  "bench_ablation_zoning"
  "bench_ablation_zoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
