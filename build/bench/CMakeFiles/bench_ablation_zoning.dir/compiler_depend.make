# Empty compiler generated dependencies file for bench_ablation_zoning.
# This may be replaced when dependencies are built.
