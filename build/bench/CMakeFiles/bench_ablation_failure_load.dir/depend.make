# Empty dependencies file for bench_ablation_failure_load.
# This may be replaced when dependencies are built.
