file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_failure_load.dir/bench_ablation_failure_load.cc.o"
  "CMakeFiles/bench_ablation_failure_load.dir/bench_ablation_failure_load.cc.o.d"
  "bench_ablation_failure_load"
  "bench_ablation_failure_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failure_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
