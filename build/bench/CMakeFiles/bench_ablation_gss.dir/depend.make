# Empty dependencies file for bench_ablation_gss.
# This may be replaced when dependencies are built.
