file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gss.dir/bench_ablation_gss.cc.o"
  "CMakeFiles/bench_ablation_gss.dir/bench_ablation_gss.cc.o.d"
  "bench_ablation_gss"
  "bench_ablation_gss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
