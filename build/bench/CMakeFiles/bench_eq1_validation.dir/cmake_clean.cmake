file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_validation.dir/bench_eq1_validation.cc.o"
  "CMakeFiles/bench_eq1_validation.dir/bench_eq1_validation.cc.o.d"
  "bench_eq1_validation"
  "bench_eq1_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
