# Empty dependencies file for bench_eq1_validation.
# This may be replaced when dependencies are built.
