# Empty dependencies file for bench_fig1_params.
# This may be replaced when dependencies are built.
