# Empty compiler generated dependencies file for bench_ablation_rebuild.
# This may be replaced when dependencies are built.
