# Empty dependencies file for bench_ablation_f_sweep.
# This may be replaced when dependencies are built.
