# Empty dependencies file for bench_fig5_analytical.
# This may be replaced when dependencies are built.
