
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bibd/complete_design.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/complete_design.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/complete_design.cc.o.d"
  "/root/repo/src/bibd/design.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/design.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/design.cc.o.d"
  "/root/repo/src/bibd/design_factory.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/design_factory.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/design_factory.cc.o.d"
  "/root/repo/src/bibd/difference_family.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/difference_family.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/difference_family.cc.o.d"
  "/root/repo/src/bibd/galois_field.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/galois_field.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/galois_field.cc.o.d"
  "/root/repo/src/bibd/pgt.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/pgt.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/pgt.cc.o.d"
  "/root/repo/src/bibd/projective_plane.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/projective_plane.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/projective_plane.cc.o.d"
  "/root/repo/src/bibd/rotational_design.cc" "src/CMakeFiles/cmfs_bibd.dir/bibd/rotational_design.cc.o" "gcc" "src/CMakeFiles/cmfs_bibd.dir/bibd/rotational_design.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
