# Empty dependencies file for cmfs_bibd.
# This may be replaced when dependencies are built.
