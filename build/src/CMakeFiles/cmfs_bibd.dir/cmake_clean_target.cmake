file(REMOVE_RECURSE
  "libcmfs_bibd.a"
)
