file(REMOVE_RECURSE
  "CMakeFiles/cmfs_bibd.dir/bibd/complete_design.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/complete_design.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/design.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/design.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/design_factory.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/design_factory.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/difference_family.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/difference_family.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/galois_field.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/galois_field.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/pgt.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/pgt.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/projective_plane.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/projective_plane.cc.o.d"
  "CMakeFiles/cmfs_bibd.dir/bibd/rotational_design.cc.o"
  "CMakeFiles/cmfs_bibd.dir/bibd/rotational_design.cc.o.d"
  "libcmfs_bibd.a"
  "libcmfs_bibd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_bibd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
