file(REMOVE_RECURSE
  "libcmfs_sim.a"
)
