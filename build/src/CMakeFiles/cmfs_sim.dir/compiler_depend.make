# Empty compiler generated dependencies file for cmfs_sim.
# This may be replaced when dependencies are built.
