file(REMOVE_RECURSE
  "CMakeFiles/cmfs_sim.dir/sim/driver.cc.o"
  "CMakeFiles/cmfs_sim.dir/sim/driver.cc.o.d"
  "CMakeFiles/cmfs_sim.dir/sim/failure_drill.cc.o"
  "CMakeFiles/cmfs_sim.dir/sim/failure_drill.cc.o.d"
  "CMakeFiles/cmfs_sim.dir/sim/reliability_sim.cc.o"
  "CMakeFiles/cmfs_sim.dir/sim/reliability_sim.cc.o.d"
  "CMakeFiles/cmfs_sim.dir/sim/stats.cc.o"
  "CMakeFiles/cmfs_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/cmfs_sim.dir/sim/workload.cc.o"
  "CMakeFiles/cmfs_sim.dir/sim/workload.cc.o.d"
  "libcmfs_sim.a"
  "libcmfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
