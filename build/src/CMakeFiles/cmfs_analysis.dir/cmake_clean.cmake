file(REMOVE_RECURSE
  "CMakeFiles/cmfs_analysis.dir/analysis/capacity.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/capacity.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/continuity.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/continuity.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/declustered_capacity.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/declustered_capacity.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/gss.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/gss.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/nonclustered_capacity.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/nonclustered_capacity.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/optimizer.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/optimizer.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/prefetch_capacity.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/prefetch_capacity.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/reliability.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/reliability.cc.o.d"
  "CMakeFiles/cmfs_analysis.dir/analysis/streaming_raid_capacity.cc.o"
  "CMakeFiles/cmfs_analysis.dir/analysis/streaming_raid_capacity.cc.o.d"
  "libcmfs_analysis.a"
  "libcmfs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
