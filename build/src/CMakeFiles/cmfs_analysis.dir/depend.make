# Empty dependencies file for cmfs_analysis.
# This may be replaced when dependencies are built.
