file(REMOVE_RECURSE
  "libcmfs_analysis.a"
)
