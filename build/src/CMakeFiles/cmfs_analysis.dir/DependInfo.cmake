
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/capacity.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/capacity.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/capacity.cc.o.d"
  "/root/repo/src/analysis/continuity.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/continuity.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/continuity.cc.o.d"
  "/root/repo/src/analysis/declustered_capacity.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/declustered_capacity.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/declustered_capacity.cc.o.d"
  "/root/repo/src/analysis/gss.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/gss.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/gss.cc.o.d"
  "/root/repo/src/analysis/nonclustered_capacity.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/nonclustered_capacity.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/nonclustered_capacity.cc.o.d"
  "/root/repo/src/analysis/optimizer.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/optimizer.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/optimizer.cc.o.d"
  "/root/repo/src/analysis/prefetch_capacity.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/prefetch_capacity.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/prefetch_capacity.cc.o.d"
  "/root/repo/src/analysis/reliability.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/reliability.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/reliability.cc.o.d"
  "/root/repo/src/analysis/streaming_raid_capacity.cc" "src/CMakeFiles/cmfs_analysis.dir/analysis/streaming_raid_capacity.cc.o" "gcc" "src/CMakeFiles/cmfs_analysis.dir/analysis/streaming_raid_capacity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
