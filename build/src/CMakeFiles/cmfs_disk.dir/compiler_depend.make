# Empty compiler generated dependencies file for cmfs_disk.
# This may be replaced when dependencies are built.
