file(REMOVE_RECURSE
  "libcmfs_disk.a"
)
