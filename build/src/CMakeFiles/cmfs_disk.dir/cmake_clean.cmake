file(REMOVE_RECURSE
  "CMakeFiles/cmfs_disk.dir/disk/cscan_scheduler.cc.o"
  "CMakeFiles/cmfs_disk.dir/disk/cscan_scheduler.cc.o.d"
  "CMakeFiles/cmfs_disk.dir/disk/disk_array.cc.o"
  "CMakeFiles/cmfs_disk.dir/disk/disk_array.cc.o.d"
  "CMakeFiles/cmfs_disk.dir/disk/disk_params.cc.o"
  "CMakeFiles/cmfs_disk.dir/disk/disk_params.cc.o.d"
  "CMakeFiles/cmfs_disk.dir/disk/seek_model.cc.o"
  "CMakeFiles/cmfs_disk.dir/disk/seek_model.cc.o.d"
  "CMakeFiles/cmfs_disk.dir/disk/sim_disk.cc.o"
  "CMakeFiles/cmfs_disk.dir/disk/sim_disk.cc.o.d"
  "libcmfs_disk.a"
  "libcmfs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
