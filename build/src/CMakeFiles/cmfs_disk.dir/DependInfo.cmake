
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/cscan_scheduler.cc" "src/CMakeFiles/cmfs_disk.dir/disk/cscan_scheduler.cc.o" "gcc" "src/CMakeFiles/cmfs_disk.dir/disk/cscan_scheduler.cc.o.d"
  "/root/repo/src/disk/disk_array.cc" "src/CMakeFiles/cmfs_disk.dir/disk/disk_array.cc.o" "gcc" "src/CMakeFiles/cmfs_disk.dir/disk/disk_array.cc.o.d"
  "/root/repo/src/disk/disk_params.cc" "src/CMakeFiles/cmfs_disk.dir/disk/disk_params.cc.o" "gcc" "src/CMakeFiles/cmfs_disk.dir/disk/disk_params.cc.o.d"
  "/root/repo/src/disk/seek_model.cc" "src/CMakeFiles/cmfs_disk.dir/disk/seek_model.cc.o" "gcc" "src/CMakeFiles/cmfs_disk.dir/disk/seek_model.cc.o.d"
  "/root/repo/src/disk/sim_disk.cc" "src/CMakeFiles/cmfs_disk.dir/disk/sim_disk.cc.o" "gcc" "src/CMakeFiles/cmfs_disk.dir/disk/sim_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
