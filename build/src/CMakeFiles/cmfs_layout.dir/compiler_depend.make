# Empty compiler generated dependencies file for cmfs_layout.
# This may be replaced when dependencies are built.
