file(REMOVE_RECURSE
  "libcmfs_layout.a"
)
