file(REMOVE_RECURSE
  "CMakeFiles/cmfs_layout.dir/layout/declustered_layout.cc.o"
  "CMakeFiles/cmfs_layout.dir/layout/declustered_layout.cc.o.d"
  "CMakeFiles/cmfs_layout.dir/layout/flat_parity_layout.cc.o"
  "CMakeFiles/cmfs_layout.dir/layout/flat_parity_layout.cc.o.d"
  "CMakeFiles/cmfs_layout.dir/layout/layout.cc.o"
  "CMakeFiles/cmfs_layout.dir/layout/layout.cc.o.d"
  "CMakeFiles/cmfs_layout.dir/layout/parity_disk_layout.cc.o"
  "CMakeFiles/cmfs_layout.dir/layout/parity_disk_layout.cc.o.d"
  "CMakeFiles/cmfs_layout.dir/layout/superclip_layout.cc.o"
  "CMakeFiles/cmfs_layout.dir/layout/superclip_layout.cc.o.d"
  "libcmfs_layout.a"
  "libcmfs_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
