
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/declustered_layout.cc" "src/CMakeFiles/cmfs_layout.dir/layout/declustered_layout.cc.o" "gcc" "src/CMakeFiles/cmfs_layout.dir/layout/declustered_layout.cc.o.d"
  "/root/repo/src/layout/flat_parity_layout.cc" "src/CMakeFiles/cmfs_layout.dir/layout/flat_parity_layout.cc.o" "gcc" "src/CMakeFiles/cmfs_layout.dir/layout/flat_parity_layout.cc.o.d"
  "/root/repo/src/layout/layout.cc" "src/CMakeFiles/cmfs_layout.dir/layout/layout.cc.o" "gcc" "src/CMakeFiles/cmfs_layout.dir/layout/layout.cc.o.d"
  "/root/repo/src/layout/parity_disk_layout.cc" "src/CMakeFiles/cmfs_layout.dir/layout/parity_disk_layout.cc.o" "gcc" "src/CMakeFiles/cmfs_layout.dir/layout/parity_disk_layout.cc.o.d"
  "/root/repo/src/layout/superclip_layout.cc" "src/CMakeFiles/cmfs_layout.dir/layout/superclip_layout.cc.o" "gcc" "src/CMakeFiles/cmfs_layout.dir/layout/superclip_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_bibd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
