file(REMOVE_RECURSE
  "CMakeFiles/cmfs_core.dir/core/buffer_pool.cc.o"
  "CMakeFiles/cmfs_core.dir/core/buffer_pool.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/content.cc.o"
  "CMakeFiles/cmfs_core.dir/core/content.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/controller_factory.cc.o"
  "CMakeFiles/cmfs_core.dir/core/controller_factory.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/declustered_controller.cc.o"
  "CMakeFiles/cmfs_core.dir/core/declustered_controller.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/dynamic_controller.cc.o"
  "CMakeFiles/cmfs_core.dir/core/dynamic_controller.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/ingest.cc.o"
  "CMakeFiles/cmfs_core.dir/core/ingest.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/nonclustered_controller.cc.o"
  "CMakeFiles/cmfs_core.dir/core/nonclustered_controller.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/prefetch_flat_controller.cc.o"
  "CMakeFiles/cmfs_core.dir/core/prefetch_flat_controller.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/prefetch_parity_disk_controller.cc.o"
  "CMakeFiles/cmfs_core.dir/core/prefetch_parity_disk_controller.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/rebuild.cc.o"
  "CMakeFiles/cmfs_core.dir/core/rebuild.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/server.cc.o"
  "CMakeFiles/cmfs_core.dir/core/server.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/streaming_raid_controller.cc.o"
  "CMakeFiles/cmfs_core.dir/core/streaming_raid_controller.cc.o.d"
  "CMakeFiles/cmfs_core.dir/core/trace.cc.o"
  "CMakeFiles/cmfs_core.dir/core/trace.cc.o.d"
  "libcmfs_core.a"
  "libcmfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
