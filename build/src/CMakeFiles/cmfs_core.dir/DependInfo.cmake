
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer_pool.cc" "src/CMakeFiles/cmfs_core.dir/core/buffer_pool.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/buffer_pool.cc.o.d"
  "/root/repo/src/core/content.cc" "src/CMakeFiles/cmfs_core.dir/core/content.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/content.cc.o.d"
  "/root/repo/src/core/controller_factory.cc" "src/CMakeFiles/cmfs_core.dir/core/controller_factory.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/controller_factory.cc.o.d"
  "/root/repo/src/core/declustered_controller.cc" "src/CMakeFiles/cmfs_core.dir/core/declustered_controller.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/declustered_controller.cc.o.d"
  "/root/repo/src/core/dynamic_controller.cc" "src/CMakeFiles/cmfs_core.dir/core/dynamic_controller.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/dynamic_controller.cc.o.d"
  "/root/repo/src/core/ingest.cc" "src/CMakeFiles/cmfs_core.dir/core/ingest.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/ingest.cc.o.d"
  "/root/repo/src/core/nonclustered_controller.cc" "src/CMakeFiles/cmfs_core.dir/core/nonclustered_controller.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/nonclustered_controller.cc.o.d"
  "/root/repo/src/core/prefetch_flat_controller.cc" "src/CMakeFiles/cmfs_core.dir/core/prefetch_flat_controller.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/prefetch_flat_controller.cc.o.d"
  "/root/repo/src/core/prefetch_parity_disk_controller.cc" "src/CMakeFiles/cmfs_core.dir/core/prefetch_parity_disk_controller.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/prefetch_parity_disk_controller.cc.o.d"
  "/root/repo/src/core/rebuild.cc" "src/CMakeFiles/cmfs_core.dir/core/rebuild.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/rebuild.cc.o.d"
  "/root/repo/src/core/server.cc" "src/CMakeFiles/cmfs_core.dir/core/server.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/server.cc.o.d"
  "/root/repo/src/core/streaming_raid_controller.cc" "src/CMakeFiles/cmfs_core.dir/core/streaming_raid_controller.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/streaming_raid_controller.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/cmfs_core.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/cmfs_core.dir/core/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_bibd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmfs_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
