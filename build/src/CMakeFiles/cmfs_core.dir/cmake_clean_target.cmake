file(REMOVE_RECURSE
  "libcmfs_core.a"
)
