# Empty dependencies file for cmfs_core.
# This may be replaced when dependencies are built.
