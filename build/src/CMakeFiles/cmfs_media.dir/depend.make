# Empty dependencies file for cmfs_media.
# This may be replaced when dependencies are built.
