file(REMOVE_RECURSE
  "libcmfs_media.a"
)
