file(REMOVE_RECURSE
  "CMakeFiles/cmfs_media.dir/media/catalog.cc.o"
  "CMakeFiles/cmfs_media.dir/media/catalog.cc.o.d"
  "libcmfs_media.a"
  "libcmfs_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
