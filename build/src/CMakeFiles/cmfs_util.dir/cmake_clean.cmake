file(REMOVE_RECURSE
  "CMakeFiles/cmfs_util.dir/util/rng.cc.o"
  "CMakeFiles/cmfs_util.dir/util/rng.cc.o.d"
  "CMakeFiles/cmfs_util.dir/util/status.cc.o"
  "CMakeFiles/cmfs_util.dir/util/status.cc.o.d"
  "libcmfs_util.a"
  "libcmfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
