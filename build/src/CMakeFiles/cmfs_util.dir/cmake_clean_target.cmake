file(REMOVE_RECURSE
  "libcmfs_util.a"
)
