# Empty dependencies file for cmfs_util.
# This may be replaced when dependencies are built.
