# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/bibd_test[1]_include.cmake")
include("/root/repo/build/tests/pgt_test[1]_include.cmake")
include("/root/repo/build/tests/galois_field_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/declustered_layout_test[1]_include.cmake")
include("/root/repo/build/tests/clustered_layout_test[1]_include.cmake")
include("/root/repo/build/tests/layout_property_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/rebuild_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_test[1]_include.cmake")
include("/root/repo/build/tests/failure_drill_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_invariants_test[1]_include.cmake")
