# Empty compiler generated dependencies file for rebuild_test.
# This may be replaced when dependencies are built.
