file(REMOVE_RECURSE
  "CMakeFiles/pgt_test.dir/pgt_test.cc.o"
  "CMakeFiles/pgt_test.dir/pgt_test.cc.o.d"
  "pgt_test"
  "pgt_test.pdb"
  "pgt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
