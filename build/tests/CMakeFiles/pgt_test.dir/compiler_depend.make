# Empty compiler generated dependencies file for pgt_test.
# This may be replaced when dependencies are built.
