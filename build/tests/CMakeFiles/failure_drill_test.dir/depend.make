# Empty dependencies file for failure_drill_test.
# This may be replaced when dependencies are built.
