file(REMOVE_RECURSE
  "CMakeFiles/failure_drill_test.dir/failure_drill_test.cc.o"
  "CMakeFiles/failure_drill_test.dir/failure_drill_test.cc.o.d"
  "failure_drill_test"
  "failure_drill_test.pdb"
  "failure_drill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_drill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
