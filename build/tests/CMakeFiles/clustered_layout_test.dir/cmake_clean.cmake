file(REMOVE_RECURSE
  "CMakeFiles/clustered_layout_test.dir/clustered_layout_test.cc.o"
  "CMakeFiles/clustered_layout_test.dir/clustered_layout_test.cc.o.d"
  "clustered_layout_test"
  "clustered_layout_test.pdb"
  "clustered_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustered_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
