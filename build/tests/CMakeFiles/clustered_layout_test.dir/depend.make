# Empty dependencies file for clustered_layout_test.
# This may be replaced when dependencies are built.
