# Empty compiler generated dependencies file for declustered_layout_test.
# This may be replaced when dependencies are built.
