file(REMOVE_RECURSE
  "CMakeFiles/declustered_layout_test.dir/declustered_layout_test.cc.o"
  "CMakeFiles/declustered_layout_test.dir/declustered_layout_test.cc.o.d"
  "declustered_layout_test"
  "declustered_layout_test.pdb"
  "declustered_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/declustered_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
