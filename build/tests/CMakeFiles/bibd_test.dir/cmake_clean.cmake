file(REMOVE_RECURSE
  "CMakeFiles/bibd_test.dir/bibd_test.cc.o"
  "CMakeFiles/bibd_test.dir/bibd_test.cc.o.d"
  "bibd_test"
  "bibd_test.pdb"
  "bibd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
