# Empty dependencies file for bibd_test.
# This may be replaced when dependencies are built.
