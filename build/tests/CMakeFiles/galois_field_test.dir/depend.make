# Empty dependencies file for galois_field_test.
# This may be replaced when dependencies are built.
