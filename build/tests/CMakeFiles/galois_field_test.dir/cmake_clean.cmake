file(REMOVE_RECURSE
  "CMakeFiles/galois_field_test.dir/galois_field_test.cc.o"
  "CMakeFiles/galois_field_test.dir/galois_field_test.cc.o.d"
  "galois_field_test"
  "galois_field_test.pdb"
  "galois_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galois_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
