#!/usr/bin/env python3
"""Validate a --trace-out Chrome trace-event artifact.

Checks that the JSON a bench wrote with --trace-out is actually loadable
by Perfetto / chrome://tracing and carries the content the tentpole
promises: well-formed trace events, at least --min-lanes lane tracks
(thread_name metadata "lane disk N") each with at least one duration
("X") event, and the pool-occupancy / lane_critical counter tracks.

Usage: validate_trace.py TRACE.json [--min-lanes N]

Exits 0 iff the trace conforms. Stdlib only.
"""

import argparse
import json
import sys

REQUIRED_COUNTERS = {"pool_occupancy_blocks", "lane_critical"}


def validate(path, min_lanes):
    errors = []

    def error(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        error(f"cannot load: {e}")
        return errors

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        error("root must be an object with 'traceEvents'")
        return errors
    events = trace["traceEvents"]
    if not isinstance(events, list):
        error("'traceEvents' must be an array")
        return errors

    lane_tids = {}  # tid -> lane name
    duration_tids = set()
    counters = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            error(f"{where}: must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "C", "M"):
            error(f"{where}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in event:
                error(f"{where}: missing '{key}'")
        if ph == "M":
            if event.get("name") == "thread_name":
                name = (event.get("args") or {}).get("name", "")
                if isinstance(name, str) and name.startswith("lane "):
                    lane_tids[event.get("tid")] = name
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            error(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                    or dur < 0):
                error(f"{where}: 'dur' must be a non-negative number")
            duration_tids.add(event.get("tid"))
        else:  # counter
            counters.add(event.get("name"))
            if "value" not in (event.get("args") or {}):
                error(f"{where}: counter missing args.value")

    if len(lane_tids) < min_lanes:
        error(f"expected >= {min_lanes} lane tracks, found {len(lane_tids)} "
              f"({sorted(lane_tids.values())})")
    for tid, name in sorted(lane_tids.items()):
        if tid not in duration_tids:
            error(f"lane track {name!r} (tid {tid}) has no duration event")
    missing = REQUIRED_COUNTERS - counters
    if missing:
        error(f"missing counter tracks {sorted(missing)}")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace")
    parser.add_argument("--min-lanes", type=int, default=1)
    args = parser.parse_args(argv[1:])
    errors = validate(args.trace, args.min_lanes)
    if errors:
        for line in errors:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    print(f"OK   {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
