#!/usr/bin/env python3
"""Validate bench --json artifacts against the documented schema.

Every bench writes a BenchReport artifact (docs/observability.md, "JSON
artifact schema"). This validator is the schema's executable form: it is
run by ctest over the artifacts the bench smoke tests produce, so schema
drift -- a renamed key, a histogram digest missing a percentile, a table
row with the wrong width -- fails tier-1 instead of silently breaking
downstream tooling.

Usage: validate_artifact.py ARTIFACT.json [ARTIFACT.json ...]

Exits 0 iff every artifact parses and conforms. Stdlib only.
"""

import json
import sys

ALLOWED_TOP_LEVEL = {
    "bench", "scheme", "params", "counters", "gauges", "histograms",
    "per_disk", "timeline", "streams", "table", "profile", "admission",
    "cache", "health",
}

# profile.phases entries whose spans nest inside "server.round": their
# totals can never exceed the round total under a monotonic clock.
# Deliberately absent: "server.prefetch" runs on the pipeline produce
# thread concurrently with the round span, and "server.overlap_stall"
# measures time the round spends waiting for that thread — both overlap
# the sub-phases above by design, so adding them to the sum would make
# the nesting bound fail on any pipelined run.
SERVER_SUB_PHASES = {
    "server.plan", "server.stage", "server.lanes", "server.merge",
    "server.commit", "server.reconstruct", "server.deliver",
    "server.cache",
}
# Tolerance for the nesting check: totals travel through %.10g.
PROFILE_NESTING_SLACK = 1e-6

HISTOGRAM_DIGEST_KEYS = {"min", "max", "mean", "p50", "p95", "p99"}

STREAM_ROW_REQUIRED = {
    "stream", "priority", "admit_round", "wait_rounds", "deliveries",
    "clean", "retried", "reconstructed", "hiccups", "shed",
    "longest_glitch_run", "rounds_degraded", "completed", "jitter", "slo",
}
STREAM_ROW_OPTIONAL = {"cause"}
STREAM_ROW_BOOLS = {"shed", "completed"}

EPOCH_NAMES = {"before", "during", "after"}

ADMISSION_COUNTS = (
    "requests", "arrivals", "seeks", "resumes", "admitted", "rejected",
    "timeouts", "withdrawn", "dropped", "final_queue_depth",
    "peak_occupancy",
)
ADMISSION_REQUIRED = set(ADMISSION_COUNTS) | {
    "policy", "wait_rounds", "occupancy", "epochs",
}
ADMISSION_POLICIES = {"disk-sum", "busiest-disk"}
ADMISSION_EPOCH_REQUIRED = {
    "first_round", "last_round", "requests", "admitted", "rejected",
    "timeouts", "rejection_rate",
}

SLO_VERDICTS = {"met", "VIOLATED"}

HEALTH_REQUIRED = {
    "rounds", "samples", "error_budget", "series", "events",
    "events_dropped", "incidents",
}
HEALTH_SERIES_REQUIRED = {
    "signal", "capacity", "stride", "samples", "buckets_merged",
    "samples_folded", "points",
}
HEALTH_POINT_REQUIRED = {"r0", "r1", "count", "min", "max", "last"}
HEALTH_EVENT_REQUIRED = {
    "round", "severity", "rule", "signal", "value", "bound", "window",
    "cause",
}
HEALTH_SEVERITIES = {"info", "warning", "critical"}
HEALTH_RULES = {"threshold", "ewma_drift", "burn_rate"}
HEALTH_INCIDENT_REQUIRED = {"round", "event", "cause", "window", "spans"}

CACHE_COUNTS = (
    "budget_blocks", "window_rounds", "prefix_blocks", "hot_clips",
    "follower_demand", "hits", "misses", "evict_fallbacks",
    "served_reads", "served_reconstructed", "captures", "evictions",
    "evicted_mid_interval", "rejected_full", "releases", "resident_peak",
    "resident_final",
)
CACHE_REQUIRED = set(CACHE_COUNTS) | {"enabled"}


class Validator:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def error(self, where, message):
        self.errors.append(f"{self.path}: {where}: {message}")

    # A JSON number or null (non-finite doubles serialize as null).
    def check_number(self, value, where):
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.error(where, f"expected number or null, got {value!r}")

    def check_histogram(self, digest, where):
        if not isinstance(digest, dict):
            self.error(where, "histogram digest must be an object")
            return
        if "count" not in digest:
            self.error(where, "histogram digest missing 'count'")
            return
        count = digest["count"]
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            self.error(where, f"'count' must be a non-negative int, got {count!r}")
            return
        if count == 0:
            extras = set(digest) - {"count"}
            if extras:
                self.error(where, f"empty digest has extra keys {sorted(extras)}")
            return
        missing = HISTOGRAM_DIGEST_KEYS - set(digest)
        if missing:
            self.error(where, f"digest missing {sorted(missing)}")
        extras = set(digest) - HISTOGRAM_DIGEST_KEYS - {"count"}
        if extras:
            self.error(where, f"digest has unknown keys {sorted(extras)}")
        for key in HISTOGRAM_DIGEST_KEYS & set(digest):
            self.check_number(digest[key], f"{where}.{key}")

    def check_scalar_map(self, section, name, value_check):
        if not isinstance(section, dict):
            self.error(name, "must be an object")
            return
        for key, value in section.items():
            if not isinstance(key, str) or not key:
                self.error(name, f"metric name must be a non-empty string, got {key!r}")
            value_check(value, f"{name}.{key}")

    def check_per_disk(self, section):
        if not isinstance(section, dict):
            self.error("per_disk", "must be an object")
            return
        for name, series in section.items():
            where = f"per_disk.{name}"
            if not isinstance(series, dict):
                self.error(where, "must be an object")
                continue
            missing = {"values", "total", "load_imbalance"} - set(series)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
            extras = set(series) - {"values", "total", "load_imbalance"}
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            values = series.get("values")
            if not isinstance(values, list):
                self.error(f"{where}.values", "must be an array")
            else:
                for i, v in enumerate(values):
                    self.check_number(v, f"{where}.values[{i}]")
            if "total" in series:
                self.check_number(series["total"], f"{where}.total")
            if "load_imbalance" in series:
                self.check_number(series["load_imbalance"],
                                  f"{where}.load_imbalance")

    def check_timeline(self, section):
        if not isinstance(section, dict):
            self.error("timeline", "must be an object")
            return
        for key in ("rounds", "retained_rounds", "degraded_rounds"):
            if key not in section:
                self.error("timeline", f"missing '{key}'")
            else:
                self.check_number(section[key], f"timeline.{key}")
        if "round_time_s" in section:
            self.check_histogram(section["round_time_s"], "timeline.round_time_s")
        epochs = section.get("epochs")
        if epochs is not None:
            if not isinstance(epochs, dict):
                self.error("timeline.epochs", "must be an object")
            else:
                unknown = set(epochs) - EPOCH_NAMES
                if unknown:
                    self.error("timeline.epochs", f"unknown epochs {sorted(unknown)}")
                for name, epoch in epochs.items():
                    where = f"timeline.epochs.{name}"
                    if not isinstance(epoch, dict):
                        self.error(where, "must be an object")
                        continue
                    if "rounds" not in epoch:
                        self.error(where, "missing 'rounds'")
                    for key, value in epoch.items():
                        if isinstance(value, dict):
                            self.check_histogram(value, f"{where}.{key}")
                        else:
                            self.check_number(value, f"{where}.{key}")
        spans = section.get("degraded_spans")
        if spans is not None:
            if not isinstance(spans, list):
                self.error("timeline.degraded_spans", "must be an array")
            else:
                for i, span in enumerate(spans):
                    where = f"timeline.degraded_spans[{i}]"
                    if not isinstance(span, dict):
                        self.error(where, "must be an object")
                        continue
                    missing = {"first_round", "last_round", "degraded"} - set(span)
                    if missing:
                        self.error(where, f"missing {sorted(missing)}")
                    if not isinstance(span.get("degraded"), bool):
                        self.error(where, "'degraded' must be a bool")

    def check_streams(self, section):
        if not isinstance(section, list):
            self.error("streams", "must be an array")
            return
        for i, row in enumerate(section):
            where = f"streams[{i}]"
            if not isinstance(row, dict):
                self.error(where, "must be an object")
                continue
            missing = STREAM_ROW_REQUIRED - set(row)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
            extras = set(row) - STREAM_ROW_REQUIRED - STREAM_ROW_OPTIONAL
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            for key in STREAM_ROW_REQUIRED - {"jitter", "slo"} - STREAM_ROW_BOOLS:
                if key in row:
                    self.check_number(row[key], f"{where}.{key}")
            for key in STREAM_ROW_BOOLS:
                if key in row and not isinstance(row[key], bool):
                    self.error(f"{where}.{key}", "must be a bool")
            if "jitter" in row:
                self.check_histogram(row["jitter"], f"{where}.jitter")
            slo = row.get("slo")
            if slo is not None and slo not in SLO_VERDICTS:
                self.error(f"{where}.slo",
                           f"must be one of {sorted(SLO_VERDICTS)}, got {slo!r}")
            if slo == "VIOLATED":
                cause = row.get("cause")
                if not isinstance(cause, str) or not cause:
                    self.error(where,
                               "SLO-violated row must carry a non-empty 'cause'")
            if "cause" in row and not isinstance(row["cause"], str):
                self.error(f"{where}.cause", "must be a string")

    def check_table(self, section):
        if not isinstance(section, dict):
            self.error("table", "must be an object")
            return
        missing = {"columns", "rows"} - set(section)
        if missing:
            self.error("table", f"missing {sorted(missing)}")
            return
        extras = set(section) - {"columns", "rows"}
        if extras:
            self.error("table", f"unknown keys {sorted(extras)}")
        columns = section["columns"]
        rows = section["rows"]
        if not isinstance(columns, list) or not all(
                isinstance(c, str) for c in columns):
            self.error("table.columns", "must be an array of strings")
            return
        if not isinstance(rows, list):
            self.error("table.rows", "must be an array")
            return
        for i, row in enumerate(rows):
            if not isinstance(row, list):
                self.error(f"table.rows[{i}]", "must be an array")
            elif len(row) != len(columns):
                self.error(f"table.rows[{i}]",
                           f"width {len(row)} != {len(columns)} columns")

    def check_profile(self, section):
        if not isinstance(section, dict):
            self.error("profile", "must be an object")
            return
        extras = set(section) - {"phases", "lanes"}
        if extras:
            self.error("profile", f"unknown keys {sorted(extras)}")
        phases = section.get("phases")
        if not isinstance(phases, dict):
            self.error("profile.phases", "must be an object")
            phases = {}
        totals = {}
        for name, phase in phases.items():
            where = f"profile.phases.{name}"
            if not isinstance(phase, dict):
                self.error(where, "must be an object")
                continue
            missing = {"count", "total_s", "time_s"} - set(phase)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
                continue
            extras = set(phase) - {"count", "total_s", "time_s"}
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            count = phase["count"]
            if (not isinstance(count, int) or isinstance(count, bool)
                    or count < 0):
                self.error(where,
                           f"'count' must be a non-negative int, got "
                           f"{count!r}")
            total = phase["total_s"]
            self.check_number(total, f"{where}.total_s")
            if isinstance(total, (int, float)) and not isinstance(
                    total, bool) and total < 0:
                self.error(f"{where}.total_s", "must be >= 0")
            else:
                totals[name] = total
            self.check_histogram(phase["time_s"], f"{where}.time_s")
            digest = phase["time_s"]
            if (isinstance(digest, dict) and isinstance(count, int)
                    and digest.get("count") != count):
                self.error(where,
                           f"time_s.count {digest.get('count')!r} != "
                           f"count {count!r}")
        # Sub-phase spans nest inside the round span, so their wall-time
        # totals cannot exceed it — a violation means the profiler's
        # clock went backwards or phases were recorded outside a round.
        round_total = totals.get("server.round")
        if isinstance(round_total, (int, float)):
            sub_total = sum(
                totals[name] for name in SERVER_SUB_PHASES
                if isinstance(totals.get(name), (int, float)))
            budget = round_total * (1.0 + PROFILE_NESTING_SLACK) \
                + PROFILE_NESTING_SLACK
            if sub_total > budget:
                self.error(
                    "profile.phases",
                    f"sub-phase totals {sub_total:.9g}s exceed "
                    f"server.round total {round_total:.9g}s")
        lanes = section.get("lanes")
        if lanes is None:
            return
        if not isinstance(lanes, dict):
            self.error("profile.lanes", "must be an object")
            return
        required = {"rounds", "busy_ratio", "idle_fraction", "busiest_s"}
        missing = required - set(lanes)
        if missing:
            self.error("profile.lanes", f"missing {sorted(missing)}")
        extras = set(lanes) - required
        if extras:
            self.error("profile.lanes", f"unknown keys {sorted(extras)}")
        if "rounds" in lanes:
            rounds = lanes["rounds"]
            if (not isinstance(rounds, int) or isinstance(rounds, bool)
                    or rounds < 0):
                self.error("profile.lanes.rounds",
                           f"must be a non-negative int, got {rounds!r}")
        for key in ("busy_ratio", "idle_fraction", "busiest_s"):
            if key in lanes:
                self.check_histogram(lanes[key], f"profile.lanes.{key}")

    def check_admission(self, section):
        if not isinstance(section, dict):
            self.error("admission", "must be an object")
            return
        missing = ADMISSION_REQUIRED - set(section)
        if missing:
            self.error("admission", f"missing {sorted(missing)}")
        extras = set(section) - ADMISSION_REQUIRED
        if extras:
            self.error("admission", f"unknown keys {sorted(extras)}")
        policy = section.get("policy")
        if policy is not None and policy not in ADMISSION_POLICIES:
            self.error("admission.policy",
                       f"must be one of {sorted(ADMISSION_POLICIES)}, "
                       f"got {policy!r}")
        counts = {}
        for key in ADMISSION_COUNTS:
            value = section.get(key)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                self.error(f"admission.{key}",
                           f"must be an int, got {value!r}")
            elif value < 0:
                self.error(f"admission.{key}",
                           f"must be >= 0, got {value}")
            else:
                counts[key] = value
        # The two conservation identities every run must satisfy: each
        # request is exactly one of arrival/seek/resume, and leaves the
        # pipeline exactly once (or is still queued at the end).
        kinds = ("arrivals", "seeks", "resumes")
        if all(k in counts for k in kinds + ("requests",)):
            total = sum(counts[k] for k in kinds)
            if total != counts["requests"]:
                self.error("admission",
                           f"arrivals+seeks+resumes = {total} != "
                           f"requests = {counts['requests']}")
        outcomes = ("admitted", "rejected", "timeouts", "withdrawn",
                    "dropped", "final_queue_depth")
        if all(k in counts for k in outcomes + ("requests",)):
            total = sum(counts[k] for k in outcomes)
            if total != counts["requests"]:
                self.error("admission",
                           f"admitted+rejected+timeouts+withdrawn+dropped"
                           f"+final_queue_depth = {total} != "
                           f"requests = {counts['requests']}")
        if "wait_rounds" in section:
            self.check_histogram(section["wait_rounds"],
                                 "admission.wait_rounds")
        if "occupancy" in section:
            self.check_histogram(section["occupancy"],
                                 "admission.occupancy")
        epochs = section.get("epochs")
        if epochs is None:
            return
        if not isinstance(epochs, list):
            self.error("admission.epochs", "must be an array")
            return
        for i, epoch in enumerate(epochs):
            where = f"admission.epochs[{i}]"
            if not isinstance(epoch, dict):
                self.error(where, "must be an object")
                continue
            missing = ADMISSION_EPOCH_REQUIRED - set(epoch)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
            extras = set(epoch) - ADMISSION_EPOCH_REQUIRED
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            for key in ADMISSION_EPOCH_REQUIRED - {"rejection_rate"}:
                if key in epoch:
                    self.check_number(epoch[key], f"{where}.{key}")
            rate = epoch.get("rejection_rate")
            if rate is not None:
                self.check_number(rate, f"{where}.rejection_rate")
                if (isinstance(rate, (int, float))
                        and not isinstance(rate, bool)
                        and not 0.0 <= rate <= 1.0):
                    self.error(f"{where}.rejection_rate",
                               f"must be in [0, 1], got {rate}")

    def check_cache(self, section):
        if not isinstance(section, dict):
            self.error("cache", "must be an object")
            return
        missing = CACHE_REQUIRED - set(section)
        if missing:
            self.error("cache", f"missing {sorted(missing)}")
        extras = set(section) - CACHE_REQUIRED
        if extras:
            self.error("cache", f"unknown keys {sorted(extras)}")
        enabled = section.get("enabled")
        if enabled is not None and not isinstance(enabled, bool):
            self.error("cache.enabled", "must be a bool")
        counts = {}
        for key in CACHE_COUNTS:
            value = section.get(key)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                self.error(f"cache.{key}", f"must be an int, got {value!r}")
            elif value < 0:
                self.error(f"cache.{key}", f"must be >= 0, got {value}")
            else:
                counts[key] = value
        # Conservation: every follower-demand read is exactly one of
        # served-from-cache, never-captured, or evicted-before-consumed;
        # and served_reads can only exceed hits via non-demand serves
        # (a clip's first stream hitting a pinned prefix).
        split = ("hits", "misses", "evict_fallbacks")
        if all(k in counts for k in split + ("follower_demand",)):
            total = sum(counts[k] for k in split)
            if total != counts["follower_demand"]:
                self.error("cache",
                           f"hits+misses+evict_fallbacks = {total} != "
                           f"follower_demand = "
                           f"{counts['follower_demand']}")
        if ("served_reads" in counts and "hits" in counts
                and counts["served_reads"] < counts["hits"]):
            self.error("cache",
                       f"served_reads = {counts['served_reads']} < "
                       f"hits = {counts['hits']}")
        if ("resident_peak" in counts and "resident_final" in counts
                and counts["resident_final"] > counts["resident_peak"]):
            self.error("cache",
                       f"resident_final = {counts['resident_final']} > "
                       f"resident_peak = {counts['resident_peak']}")
        if ("resident_peak" in counts and "budget_blocks" in counts
                and counts["resident_peak"] > counts["budget_blocks"]):
            self.error("cache",
                       f"resident_peak = {counts['resident_peak']} > "
                       f"budget_blocks = {counts['budget_blocks']}")

    def check_nonneg_int(self, value, where):
        if (not isinstance(value, int) or isinstance(value, bool)
                or value < 0):
            self.error(where, f"must be a non-negative int, got {value!r}")
            return None
        return value

    def check_health(self, section):
        if not isinstance(section, dict):
            self.error("health", "must be an object")
            return
        missing = HEALTH_REQUIRED - set(section)
        if missing:
            self.error("health", f"missing {sorted(missing)}")
        extras = set(section) - HEALTH_REQUIRED
        if extras:
            self.error("health", f"unknown keys {sorted(extras)}")
        rounds = self.check_nonneg_int(section.get("rounds", 0),
                                       "health.rounds")
        self.check_nonneg_int(section.get("samples", 0), "health.samples")
        self.check_nonneg_int(section.get("events_dropped", 0),
                              "health.events_dropped")
        self.check_number(section.get("error_budget"), "health.error_budget")

        series = section.get("series", [])
        if not isinstance(series, list):
            self.error("health.series", "must be an array")
            series = []
        for i, entry in enumerate(series):
            where = f"health.series[{i}]"
            if not isinstance(entry, dict):
                self.error(where, "must be an object")
                continue
            missing = HEALTH_SERIES_REQUIRED - set(entry)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
                continue
            extras = set(entry) - HEALTH_SERIES_REQUIRED
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            if not isinstance(entry["signal"], str) or not entry["signal"]:
                self.error(f"{where}.signal", "must be a non-empty string")
            capacity = self.check_nonneg_int(entry["capacity"],
                                             f"{where}.capacity")
            stride = self.check_nonneg_int(entry["stride"],
                                           f"{where}.stride")
            if stride is not None and (stride < 1 or stride & (stride - 1)):
                self.error(f"{where}.stride",
                           f"must be a power of two >= 1, got {stride}")
            samples = self.check_nonneg_int(entry["samples"],
                                            f"{where}.samples")
            self.check_nonneg_int(entry["buckets_merged"],
                                  f"{where}.buckets_merged")
            folded = self.check_nonneg_int(entry["samples_folded"],
                                           f"{where}.samples_folded")
            points = entry["points"]
            if not isinstance(points, list):
                self.error(f"{where}.points", "must be an array")
                continue
            # Downsampling invariants: the retained buckets never exceed
            # the configured capacity, and folding only merges — every
            # recorded sample is still counted by exactly one bucket.
            if capacity is not None and len(points) > capacity:
                self.error(f"{where}.points",
                           f"{len(points)} buckets exceed capacity "
                           f"{capacity}")
            total_count = 0
            prev_r1 = None
            for j, point in enumerate(points):
                pwhere = f"{where}.points[{j}]"
                if not isinstance(point, dict):
                    self.error(pwhere, "must be an object")
                    continue
                missing = HEALTH_POINT_REQUIRED - set(point)
                if missing:
                    self.error(pwhere, f"missing {sorted(missing)}")
                    continue
                extras = set(point) - HEALTH_POINT_REQUIRED
                if extras:
                    self.error(pwhere, f"unknown keys {sorted(extras)}")
                count = self.check_nonneg_int(point["count"],
                                              f"{pwhere}.count")
                if count is not None:
                    total_count += count
                for key in ("min", "max", "last"):
                    self.check_number(point[key], f"{pwhere}.{key}")
                r0, r1 = point["r0"], point["r1"]
                self.check_number(r0, f"{pwhere}.r0")
                self.check_number(r1, f"{pwhere}.r1")
                if isinstance(r0, int) and isinstance(r1, int):
                    if r0 > r1:
                        self.error(pwhere, f"r0 {r0} > r1 {r1}")
                    if prev_r1 is not None and r0 <= prev_r1:
                        self.error(pwhere,
                                   f"r0 {r0} does not advance past "
                                   f"previous bucket's r1 {prev_r1}")
                    prev_r1 = r1
            if samples is not None and total_count != samples:
                self.error(f"{where}.points",
                           f"bucket counts sum to {total_count} != "
                           f"samples {samples}")

        events = section.get("events", [])
        if not isinstance(events, list):
            self.error("health.events", "must be an array")
            events = []
        for i, event in enumerate(events):
            where = f"health.events[{i}]"
            if not isinstance(event, dict):
                self.error(where, "must be an object")
                continue
            missing = HEALTH_EVENT_REQUIRED - set(event)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
                continue
            extras = set(event) - HEALTH_EVENT_REQUIRED
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            round_ = self.check_nonneg_int(event["round"], f"{where}.round")
            # rounds is the exclusive upper bound of observed rounds.
            if (round_ is not None and rounds is not None
                    and round_ >= rounds):
                self.error(f"{where}.round",
                           f"{round_} out of bounds (rounds={rounds})")
            if event["severity"] not in HEALTH_SEVERITIES:
                self.error(f"{where}.severity",
                           f"must be one of {sorted(HEALTH_SEVERITIES)}, "
                           f"got {event['severity']!r}")
            if event["rule"] not in HEALTH_RULES:
                self.error(f"{where}.rule",
                           f"must be one of {sorted(HEALTH_RULES)}, "
                           f"got {event['rule']!r}")
            if not isinstance(event["signal"], str) or not event["signal"]:
                self.error(f"{where}.signal", "must be a non-empty string")
            self.check_number(event["value"], f"{where}.value")
            self.check_number(event["bound"], f"{where}.bound")
            self.check_nonneg_int(event["window"], f"{where}.window")
            if not isinstance(event["cause"], str):
                self.error(f"{where}.cause", "must be a string")

        incidents = section.get("incidents", [])
        if not isinstance(incidents, list):
            self.error("health.incidents", "must be an array")
            incidents = []
        for i, incident in enumerate(incidents):
            where = f"health.incidents[{i}]"
            if not isinstance(incident, dict):
                self.error(where, "must be an object")
                continue
            missing = HEALTH_INCIDENT_REQUIRED - set(incident)
            if missing:
                self.error(where, f"missing {sorted(missing)}")
                continue
            extras = set(incident) - HEALTH_INCIDENT_REQUIRED
            if extras:
                self.error(where, f"unknown keys {sorted(extras)}")
            self.check_nonneg_int(incident["round"], f"{where}.round")
            # Every incident references its triggering event by index
            # (-1 iff the event itself was dropped at the max_events cap).
            ref = incident["event"]
            if not isinstance(ref, int) or isinstance(ref, bool):
                self.error(f"{where}.event", f"must be an int, got {ref!r}")
            elif ref < -1 or ref >= len(events):
                self.error(f"{where}.event",
                           f"index {ref} out of range "
                           f"(events={len(events)})")
            elif ref >= 0 and isinstance(events[ref], dict):
                event = events[ref]
                if event.get("round") != incident["round"]:
                    self.error(f"{where}.event",
                               f"event round {event.get('round')!r} != "
                               f"incident round {incident['round']!r}")
                if event.get("severity") != "critical":
                    self.error(f"{where}.event",
                               "incident references a non-critical event")
            elif ref == -1:
                dropped = section.get("events_dropped", 0)
                if isinstance(dropped, int) and dropped == 0:
                    self.error(f"{where}.event",
                               "-1 (dropped event) but events_dropped is 0")
            if not isinstance(incident["cause"], str):
                self.error(f"{where}.cause", "must be a string")
            window = incident["window"]
            if not isinstance(window, list):
                self.error(f"{where}.window", "must be an array")
                window = []
            for j, point in enumerate(window):
                pwhere = f"{where}.window[{j}]"
                if not isinstance(point, dict):
                    self.error(pwhere, "must be an object")
                    continue
                if set(point) != {"round", "value"}:
                    self.error(pwhere,
                               f"must have exactly round/value, got "
                               f"{sorted(point)}")
                    continue
                self.check_number(point["round"], f"{pwhere}.round")
                self.check_number(point["value"], f"{pwhere}.value")
            if not isinstance(incident["spans"], str):
                self.error(f"{where}.spans", "must be a string")

    def validate(self, artifact):
        if not isinstance(artifact, dict):
            self.error("(root)", "artifact must be a JSON object")
            return
        if "bench" not in artifact:
            self.error("(root)", "missing required key 'bench'")
        elif not isinstance(artifact["bench"], str) or not artifact["bench"]:
            self.error("bench", "must be a non-empty string")
        unknown = set(artifact) - ALLOWED_TOP_LEVEL
        if unknown:
            self.error("(root)", f"unknown top-level keys {sorted(unknown)} "
                       f"(allowed: {sorted(ALLOWED_TOP_LEVEL)})")
        if "scheme" in artifact and not isinstance(artifact["scheme"], str):
            self.error("scheme", "must be a string")
        if "params" in artifact:
            self.check_scalar_map(artifact["params"], "params", self.check_number)
        if "counters" in artifact:
            self.check_scalar_map(artifact["counters"], "counters",
                                  self.check_number)
        if "gauges" in artifact:
            self.check_scalar_map(artifact["gauges"], "gauges", self.check_number)
        if "histograms" in artifact:
            self.check_scalar_map(artifact["histograms"], "histograms",
                                  self.check_histogram)
        if "per_disk" in artifact:
            self.check_per_disk(artifact["per_disk"])
        if "timeline" in artifact:
            self.check_timeline(artifact["timeline"])
        if "streams" in artifact:
            self.check_streams(artifact["streams"])
        if "table" in artifact:
            self.check_table(artifact["table"])
        if "profile" in artifact:
            self.check_profile(artifact["profile"])
        if "admission" in artifact:
            self.check_admission(artifact["admission"])
        if "cache" in artifact:
            self.check_cache(artifact["cache"])
        if "health" in artifact:
            self.check_health(artifact["health"])


def validate_file(path):
    validator = Validator(path)
    try:
        with open(path, "r", encoding="utf-8") as f:
            artifact = json.load(f)
    except OSError as e:
        validator.error("(file)", f"cannot read: {e}")
        return validator.errors
    except json.JSONDecodeError as e:
        validator.error("(file)", f"invalid JSON: {e}")
        return validator.errors
    validator.validate(artifact)
    return validator.errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        errors = validate_file(path)
        if errors:
            failed += 1
            for line in errors:
                print(f"FAIL {line}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
