#!/usr/bin/env python3
"""Diff two bench --json artifacts and gate perf/behavior regressions.

The repo's benches are deterministic simulations: counters, gauges,
histograms of *simulated* time, tables and QoS rows must match the
committed baseline exactly (any drift is a behavior change — regenerate
the baseline deliberately, with the change that caused it). The one
exception is the `profile` section (docs/observability.md): it measures
host wall-clock, so it is gated with a ratio threshold instead — a phase
whose total time grows past --time-threshold x baseline is a perf
regression. A phase present only in the candidate (a newly
instrumented sub-phase, e.g. server.commit when the engine split the
merge) is reported as informational ("new"), never a failure — only a
phase that *disappears* from the candidate is a regression, because
the baseline said it should be there.

Usage:
  bench_compare.py BASELINE.json CANDIDATE.json [--time-threshold R]
                   [--all]

  --time-threshold R   max allowed candidate/baseline wall-time ratio
                       for profile phase totals (default 1.5; ctest uses
                       2.0 — generous for a loaded single-core CI box)
  --all                print every compared metric, not just changes

Prints a delta table and exits nonzero iff any regression was found.
Regenerate the baseline with:
  ./build/bench/bench_eq1_validation --json BENCH_baseline.json

Stdlib only.
"""

import argparse
import json
import sys

# Relative tolerance for float metrics that are deterministic in theory
# but travel through %.10g serialization (and may be recomputed by a
# different compiler's FP contraction).
REL_EPS = 1e-6

# Wall-clock phases shorter than this (seconds) are noise-dominated on a
# shared CI box; they are reported but never gated.
MIN_GATED_SECONDS = 1e-3


def rel_delta(base, cand):
    if base == cand:
        return 0.0
    scale = max(abs(base), abs(cand), 1e-30)
    return abs(cand - base) / scale


class Comparison:
    def __init__(self, time_threshold, time_gate=True):
        self.time_threshold = time_threshold
        self.time_gate = time_gate
        self.rows = []  # (status, metric, baseline, candidate, note)
        self.regressions = 0

    def add(self, status, metric, base, cand, note=""):
        self.rows.append((status, metric, base, cand, note))
        if status == "REGRESSION":
            self.regressions += 1

    def exact(self, metric, base, cand):
        """Deterministic scalar: any difference beyond FP noise fails."""
        if base is None and cand is None:
            self.add("ok", metric, base, cand)
        elif cand is None or base is None:
            self.add("REGRESSION", metric, base, cand, "value vanished"
                     if cand is None else "value appeared")
        elif isinstance(base, (int, float)) and isinstance(cand, (int, float)):
            if rel_delta(float(base), float(cand)) <= REL_EPS:
                self.add("ok", metric, base, cand)
            else:
                self.add("REGRESSION", metric, base, cand,
                         "deterministic metric drifted")
        elif base == cand:
            self.add("ok", metric, base, cand)
        else:
            self.add("REGRESSION", metric, base, cand,
                     "deterministic metric drifted")

    def walltime(self, metric, base, cand):
        """Wall-clock total: candidate may not exceed threshold x base."""
        if cand is None:
            # Structural, not timing: a phase the baseline says should
            # exist is gone — gated even with --no-time-gate.
            self.add("REGRESSION", metric, base, cand, "phase vanished")
            return
        if base is None:
            self.add("new", metric, base, cand)
            return
        if base < MIN_GATED_SECONDS and cand < MIN_GATED_SECONDS:
            self.add("ok", metric, base, cand, "below gating floor")
            return
        ratio = cand / base if base > 0 else float("inf")
        if not self.time_gate:
            self.add("ok", metric, base, cand, f"{ratio:.2f}x (ungated)")
            return
        if ratio > self.time_threshold:
            self.add("REGRESSION", metric, base, cand,
                     f"{ratio:.2f}x > {self.time_threshold:.2f}x budget")
        else:
            self.add("ok", metric, base, cand, f"{ratio:.2f}x")

    def scalar_map(self, section, base, cand, check):
        base = base or {}
        cand = cand or {}
        for key in sorted(base):
            check(f"{section}.{key}", base.get(key), cand.get(key))
        for key in sorted(set(cand) - set(base)):
            self.add("new", f"{section}.{key}", None, cand[key])

    def histogram(self, metric, base, cand):
        """Deterministic digest: count exact, moments within FP noise."""
        if not isinstance(base, dict) or not isinstance(cand, dict):
            self.exact(metric, base, cand)
            return
        self.exact(f"{metric}.count", base.get("count"), cand.get("count"))
        for key in ("mean", "p50", "p99"):
            if key in base or key in cand:
                self.exact(f"{metric}.{key}", base.get(key), cand.get(key))


def compare(baseline, candidate, time_threshold, time_gate=True):
    c = Comparison(time_threshold, time_gate)
    if baseline.get("bench") != candidate.get("bench"):
        c.add("REGRESSION", "bench", baseline.get("bench"),
              candidate.get("bench"), "different benches are not comparable")
        return c
    c.exact("scheme", baseline.get("scheme"), candidate.get("scheme"))
    c.scalar_map("params", baseline.get("params"), candidate.get("params"),
                 c.exact)
    c.scalar_map("counters", baseline.get("counters"),
                 candidate.get("counters"), c.exact)
    c.scalar_map("gauges", baseline.get("gauges"), candidate.get("gauges"),
                 c.exact)
    c.scalar_map("histograms", baseline.get("histograms"),
                 candidate.get("histograms"), c.histogram)

    b_tl = baseline.get("timeline") or {}
    n_tl = candidate.get("timeline") or {}
    for key in ("rounds", "degraded_rounds"):
        if key in b_tl or key in n_tl:
            c.exact(f"timeline.{key}", b_tl.get(key), n_tl.get(key))
    if "round_time_s" in b_tl or "round_time_s" in n_tl:
        c.histogram("timeline.round_time_s", b_tl.get("round_time_s"),
                    n_tl.get("round_time_s"))

    b_streams = baseline.get("streams")
    n_streams = candidate.get("streams")
    if b_streams is not None or n_streams is not None:
        c.exact("streams.length",
                len(b_streams) if b_streams is not None else None,
                len(n_streams) if n_streams is not None else None)

    b_table = baseline.get("table")
    n_table = candidate.get("table")
    if b_table is not None or n_table is not None:
        c.exact("table.rows.length",
                len((b_table or {}).get("rows", [])),
                len((n_table or {}).get("rows", [])))

    # --- admission / cache: deterministic scalar sections ----------------
    b_adm = baseline.get("admission")
    n_adm = candidate.get("admission")
    if b_adm is not None or n_adm is not None:
        b_adm = b_adm or {}
        n_adm = n_adm or {}
        c.exact("admission.policy", b_adm.get("policy"), n_adm.get("policy"))
        for key in ("requests", "arrivals", "seeks", "resumes", "admitted",
                    "rejected", "timeouts", "withdrawn", "dropped",
                    "final_queue_depth", "peak_occupancy"):
            c.exact(f"admission.{key}", b_adm.get(key), n_adm.get(key))
        c.histogram("admission.wait_rounds", b_adm.get("wait_rounds"),
                    n_adm.get("wait_rounds"))
        c.histogram("admission.occupancy", b_adm.get("occupancy"),
                    n_adm.get("occupancy"))
        c.exact("admission.epochs.length",
                len(b_adm.get("epochs") or []),
                len(n_adm.get("epochs") or []))

    b_cache = baseline.get("cache")
    n_cache = candidate.get("cache")
    if b_cache is not None or n_cache is not None:
        c.scalar_map("cache", b_cache, n_cache, c.exact)

    # --- health: deterministic series digests, exact events/incidents ----
    # Every health signal derives from committed simulated state (even
    # server.round_time_s is the simulated worst-disk service time), so
    # the event log and incident reports must match the baseline exactly
    # — a new or vanished event is a behavior change. Series are
    # compared by their fold-accounting digest (samples, stride,
    # buckets_merged), not bucket-by-bucket: the digest pins the same
    # rounds were observed the same number of times without replaying
    # every retained point here.
    b_health = baseline.get("health")
    n_health = candidate.get("health")
    if b_health is not None or n_health is not None:
        b_health = b_health or {}
        n_health = n_health or {}
        for key in ("rounds", "samples", "events_dropped"):
            c.exact(f"health.{key}", b_health.get(key), n_health.get(key))
        b_series = {s.get("signal"): s
                    for s in b_health.get("series") or []}
        n_series = {s.get("signal"): s
                    for s in n_health.get("series") or []}
        for signal in sorted(b_series):
            base_s = b_series[signal]
            cand_s = n_series.get(signal)
            for key in ("samples", "stride", "buckets_merged"):
                c.exact(f"health.series.{signal}.{key}", base_s.get(key),
                        (cand_s or {}).get(key))
        for signal in sorted(set(n_series) - set(b_series)):
            c.add("new", f"health.series.{signal}.samples", None,
                  n_series[signal].get("samples"))
        b_events = b_health.get("events") or []
        n_events = n_health.get("events") or []
        c.exact("health.events.length", len(b_events), len(n_events))
        for i, (base_e, cand_e) in enumerate(zip(b_events, n_events)):
            if base_e != cand_e:
                c.add("REGRESSION", f"health.events[{i}]",
                      base_e.get("signal"), cand_e.get("signal"),
                      "event drifted from baseline")
        b_inc = b_health.get("incidents") or []
        n_inc = n_health.get("incidents") or []
        c.exact("health.incidents.length", len(b_inc), len(n_inc))
        for i, (base_i, cand_i) in enumerate(zip(b_inc, n_inc)):
            if base_i != cand_i:
                c.add("REGRESSION", f"health.incidents[{i}]",
                      base_i.get("round"), cand_i.get("round"),
                      "incident drifted from baseline")

    # Top-level sections neither handler above knows are surfaced as
    # informational — a silent fall-through is how a new section escapes
    # gating forever.
    known = {"bench", "scheme", "params", "counters", "gauges",
             "histograms", "per_disk", "timeline", "streams", "table",
             "profile", "admission", "cache", "health"}
    for key in sorted(set(candidate) - known):
        c.add("new", key, None, "(uncompared section)")
    for key in sorted(set(baseline) - known - set(candidate)):
        c.add("REGRESSION", key, "(uncompared section)", None,
              "baseline section vanished from candidate")

    # --- profile: the wall-clock side channel, ratio-gated ---------------
    b_prof = baseline.get("profile") or {}
    n_prof = candidate.get("profile") or {}
    b_phases = b_prof.get("phases") or {}
    n_phases = n_prof.get("phases") or {}
    for name in sorted(b_phases):
        base_phase = b_phases[name]
        cand_phase = n_phases.get(name)
        c.exact(f"profile.{name}.count", base_phase.get("count"),
                (cand_phase or {}).get("count"))
        c.walltime(f"profile.{name}.total_s", base_phase.get("total_s"),
                   (cand_phase or {}).get("total_s"))
    # Candidate-only phases are informational by policy: new
    # instrumentation must not fail the gate (the next deliberate
    # baseline regeneration starts gating them). Dropped phases are
    # caught above — the baseline's count compares against None.
    for name in sorted(set(n_phases) - set(b_phases)):
        c.add("new", f"profile.{name}.total_s", None,
              n_phases[name].get("total_s"))
    b_lanes = b_prof.get("lanes") or {}
    n_lanes = n_prof.get("lanes") or {}
    if b_lanes or n_lanes:
        c.exact("profile.lanes.rounds", b_lanes.get("rounds"),
                n_lanes.get("rounds"))
    return c


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--time-threshold", type=float, default=1.5)
    parser.add_argument("--no-time-gate", action="store_true",
                        help="report wall-time ratios but never fail on "
                             "them (sanitizer builds: instrumentation "
                             "overhead swamps any honest budget; the "
                             "deterministic diff still gates exactly)")
    parser.add_argument("--all", action="store_true",
                        help="print unchanged metrics too")
    args = parser.parse_args(argv[1:])

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        with open(args.candidate, "r", encoding="utf-8") as f:
            candidate = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL cannot load artifacts: {e}", file=sys.stderr)
        return 2

    c = compare(baseline, candidate, args.time_threshold,
                time_gate=not args.no_time_gate)

    name_w = max((len(r[1]) for r in c.rows), default=10)
    printed = 0
    print(f"{'status':<12} {'metric':<{name_w}} {'baseline':>14} "
          f"{'candidate':>14}  note")
    for status, metric, base, cand, note in c.rows:
        if status == "ok" and not args.all:
            continue
        printed += 1
        print(f"{status:<12} {metric:<{name_w}} {fmt(base):>14} "
              f"{fmt(cand):>14}  {note}")
    if printed == 0:
        print("(no changes)")
    total = len(c.rows)
    print(f"\ncompared {total} metrics: {c.regressions} regression(s), "
          f"time threshold {args.time_threshold:.2f}x")
    if c.regressions:
        print("FAIL: regressions vs baseline — if intentional, regenerate "
              "BENCH_baseline.json (see header)", file=sys.stderr)
        return 1
    print(f"OK   {args.candidate} within budget of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
