#!/usr/bin/env python3
"""Render a bench artifact's `health` section as a terminal report.

The health monitor (docs/observability.md, "Health monitor & incidents")
exports per-round metric series, the rule-engine event log, and the
escalated incident reports into the bench JSON artifact. This tool turns
that section into something a human scans in seconds: one ASCII
sparkline per signal (drawn from each retained bucket's max, so spikes
that survived downsampling survive rendering too), the event log grouped
by severity, and a digest of every incident with its cause and raw
signal window.

Usage: report_health.py ARTIFACT.json [ARTIFACT.json ...]
       report_health.py --check ARTIFACT.json [...]

--check prints nothing on success and exits nonzero if any artifact is
missing a health section or the section is malformed — the smoke-test
mode ctest runs against the storm bench artifact. Stdlib only.
"""

import json
import sys

SPARK = "▁▂▃▄▅▆▇█"
SPARK_WIDTH = 64

SEVERITY_ORDER = ("critical", "warning", "info")


def sparkline(values, width=SPARK_WIDTH):
    """Downsample `values` to `width` columns, max-preserving."""
    if not values:
        return ""
    if len(values) > width:
        folded = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            folded.append(max(values[lo:hi]))
        values = folded
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return SPARK[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(SPARK) - 1))
        out.append(SPARK[max(0, min(len(SPARK) - 1, idx))])
    return "".join(out)


def fmt(value):
    if value is None:
        return "nan"
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


class MalformedHealth(Exception):
    pass


def get(obj, key, types, where):
    if not isinstance(obj, dict) or key not in obj:
        raise MalformedHealth(f"{where}: missing '{key}'")
    value = obj[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise MalformedHealth(f"{where}.{key}: unexpected {value!r}")
    return value


def load_health(path):
    with open(path, "r", encoding="utf-8") as f:
        artifact = json.load(f)
    if not isinstance(artifact, dict) or "health" not in artifact:
        raise MalformedHealth("no 'health' section in artifact")
    health = artifact["health"]
    # Touch every structural field so --check catches schema drift even
    # when the rendering path would happen not to.
    get(health, "rounds", int, "health")
    get(health, "samples", int, "health")
    get(health, "events_dropped", int, "health")
    for i, series in enumerate(get(health, "series", list, "health")):
        where = f"health.series[{i}]"
        get(series, "signal", str, where)
        get(series, "stride", int, where)
        get(series, "samples", int, where)
        for j, point in enumerate(get(series, "points", list, where)):
            pwhere = f"{where}.points[{j}]"
            get(point, "r0", int, pwhere)
            get(point, "r1", int, pwhere)
            get(point, "max", (int, float), pwhere)
    for i, event in enumerate(get(health, "events", list, "health")):
        where = f"health.events[{i}]"
        get(event, "round", int, where)
        get(event, "severity", str, where)
        get(event, "rule", str, where)
        get(event, "signal", str, where)
    for i, incident in enumerate(get(health, "incidents", list, "health")):
        where = f"health.incidents[{i}]"
        get(incident, "round", int, where)
        get(incident, "event", int, where)
        get(incident, "cause", str, where)
        get(incident, "window", list, where)
        get(incident, "spans", str, where)
    return artifact.get("bench", "?"), health


def render(bench, health):
    lines = []
    lines.append(
        f"health report: {bench} — rounds={health['rounds']} "
        f"samples={health['samples']} events={len(health['events'])} "
        f"(+{health['events_dropped']} dropped) "
        f"incidents={len(health['incidents'])}")

    lines.append("")
    lines.append("signals (sparkline of per-bucket max):")
    for series in health["series"]:
        maxes = [p["max"] for p in series["points"]]
        note = f" x{series['stride']}" if series["stride"] > 1 else ""
        lo = min(maxes) if maxes else None
        hi = max(maxes) if maxes else None
        lines.append(
            f"  {series['signal']:<28} {sparkline(maxes):<{SPARK_WIDTH}} "
            f"[{fmt(lo)}, {fmt(hi)}]{note}")

    by_severity = {}
    for event in health["events"]:
        by_severity.setdefault(event["severity"], []).append(event)
    lines.append("")
    if health["events"]:
        lines.append("events:")
        for severity in SEVERITY_ORDER:
            for event in by_severity.pop(severity, []):
                lines.append(
                    f"  [{severity:>8}] r{event['round']:<4} "
                    f"{event['rule']:<10} {event['signal']:<28} "
                    f"value={fmt(event.get('value'))} "
                    f"bound={fmt(event.get('bound'))} "
                    f"cause={event.get('cause') or '-'}")
        for severity in sorted(by_severity):  # unknown severities last
            for event in by_severity[severity]:
                lines.append(
                    f"  [{severity:>8}] r{event['round']:<4} "
                    f"{event['rule']:<10} {event['signal']}")
    else:
        lines.append("events: none")

    lines.append("")
    if health["incidents"]:
        lines.append("incidents:")
        for i, incident in enumerate(health["incidents"]):
            event = {}
            ref = incident["event"]
            if 0 <= ref < len(health["events"]):
                event = health["events"][ref]
            lines.append(
                f"  incident {i}: round {incident['round']} — "
                f"{event.get('rule', '?')} on "
                f"{event.get('signal', '?')} "
                f"(cause: {incident['cause'] or '-'})")
            window = incident["window"]
            if window:
                values = [p.get("value", 0) for p in window]
                r0 = window[0].get("round")
                r1 = window[-1].get("round")
                lines.append(
                    f"    window r{r0}..r{r1}: {sparkline(values, 32)} "
                    f"[{fmt(min(values))}, {fmt(max(values))}]")
            for line in incident["spans"].splitlines():
                lines.append(f"    {line}")
    else:
        lines.append("incidents: none")
    return "\n".join(lines)


def main(argv):
    args = list(argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in args:
        try:
            bench, health = load_health(path)
        except (OSError, json.JSONDecodeError, MalformedHealth) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failed += 1
            continue
        if check:
            print(f"OK   {path} (events={len(health['events'])}, "
                  f"incidents={len(health['incidents'])})")
        else:
            print(render(bench, health))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
